"""Tests for 2-D sensitivity surfaces."""

import pytest

from repro.harness.surface import (SensitivitySurface,
                                   overhead_gap_surface,
                                   sensitivity_surface)


def small_surface():
    return sensitivity_surface(
        "Radb", n_nodes=4, x_dial="overhead", x_values=(25.0,),
        y_dial="gap", y_values=(25.0,), scale=0.05)


def test_unknown_dial_rejected():
    with pytest.raises(ValueError):
        sensitivity_surface("Radix", 2, "colour", (1.0,), "gap", (1.0,))


def test_baseline_corner_is_one():
    surface = small_surface()
    assert surface.at(0.0, 0.0) == pytest.approx(1.0)


def test_grid_includes_zero_automatically():
    surface = small_surface()
    assert surface.x_values[0] == 0.0
    assert surface.y_values[0] == 0.0
    assert len(surface.slowdown) == 4


def test_surface_monotone():
    surface = small_surface()
    assert surface.is_monotone()
    assert surface.at(25.0, 25.0) >= surface.at(25.0, 0.0)


def test_interaction_excess_definition():
    surface = SensitivitySurface(
        app_name="x", n_nodes=2, x_dial="overhead", y_dial="gap",
        x_values=[0.0, 10.0], y_values=[0.0, 10.0],
        slowdown={(0.0, 0.0): 1.0, (10.0, 0.0): 3.0,
                  (0.0, 10.0): 2.0, (10.0, 10.0): 4.5})
    # independent composition: 3 + 2 - 1 = 4; measured 4.5 -> +0.5.
    assert surface.interaction_excess(10.0, 10.0) \
        == pytest.approx(0.5)


def test_rows_and_render():
    surface = small_surface()
    rows = surface.rows()
    assert len(rows) == 2
    text = surface.render()
    assert "surface" in text
    assert len(text.splitlines()) == 4  # title + header + 2 rows


def test_overhead_gap_surface_shortcut():
    surface = overhead_gap_surface(app_name="Radb", n_nodes=2,
                                   values=(50.0,), scale=0.05)
    assert surface.x_dial == "overhead" and surface.y_dial == "gap"
    assert surface.at(50.0, 50.0) > 1.0
