"""Fault injection and the AM reliability protocol.

The contract under test: a null plan is bit-identical to no plan at
all; seeded faults replay bit-identically (and hit the run cache);
packet loss is recovered exactly-once by the NIC's ack/retransmit
machinery; a dead link surfaces as a structured failure, not a
livelock; and the satellite fixes (fragment reassembly by distinct
index, reassembly-leak teardown, transmit-busy accounting, N/A rows on
a failed baseline) hold.
"""

import pytest

from repro.am.tuning import TuningKnobs
from repro.apps import RadixSort
from repro.apps.base import Application
from repro.cluster.machine import Cluster
from repro.harness import RunCache, fault_sweep, spike_decay_sweep
from repro.harness.runcache import run_key_spec
from repro.harness.sweeps import SweepPoint, SweepResult
from repro.network.faults import (DelaySpike, FaultInjector, FaultPlan,
                                  RetryExhausted, SlowdownWindow)
from repro.network.loggp import LogGPParams
from repro.network.nic import Nic
from repro.network.packet import Packet, PacketKind
from repro.network.wire import Wire
from repro.sim import Simulator


def tiny_radix():
    return RadixSort(keys_per_proc=32)


def lossy_plan(**overrides):
    """A drop plan with short timeouts so tests stay fast."""
    spec = dict(drop_rate=0.02, retx_timeout_us=60.0)
    spec.update(overrides)
    return FaultPlan(**spec)


def fingerprint(result):
    return (result.runtime_us, result.events_processed,
            result.stats.to_dict())


# ---------------------------------------------------------------------------
# FaultPlan semantics.
# ---------------------------------------------------------------------------

def test_default_plan_is_null_and_needs_no_reliability():
    plan = FaultPlan()
    assert plan.is_null
    assert not plan.needs_reliability
    assert plan.as_spec() is None
    assert plan.describe() == "no faults"


def test_spike_only_plan_is_not_null_but_skips_reliability():
    plan = FaultPlan(spikes=(DelaySpike(node=0, start_us=10.0,
                                        duration_us=5.0),))
    assert not plan.is_null
    assert not plan.needs_reliability  # nothing is lost, only delayed


def test_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(drop_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(retx_timeout_us=0.0)
    with pytest.raises(ValueError):
        DelaySpike(node=0, start_us=-1.0, duration_us=5.0)
    with pytest.raises(ValueError):
        SlowdownWindow(node=0, start_us=0.0, duration_us=5.0, factor=0.5)


def test_null_plan_needs_no_injector():
    with pytest.raises(ValueError):
        FaultInjector(FaultPlan(), seed=0)


def test_injector_streams_depend_on_seed_and_salt():
    plan = FaultPlan(drop_rate=0.5)

    def draws(seed, salt=0):
        injector = FaultInjector(plan.with_changes(salt=salt), seed)
        return [injector._rng.random_sample() for _ in range(8)]

    assert draws(1) == draws(1)
    assert draws(1) != draws(2)
    assert draws(1) != draws(1, salt=9)


# ---------------------------------------------------------------------------
# The acceptance bar: null-plan bit-identity.
# ---------------------------------------------------------------------------

def test_null_plan_bit_identical_to_no_plan():
    bare = Cluster(n_nodes=4, seed=3).run(tiny_radix())
    nulled = Cluster(n_nodes=4, seed=3, faults=FaultPlan()).run(tiny_radix())
    assert fingerprint(bare) == fingerprint(nulled)


def test_lossy_run_completes_and_replays_bit_identically():
    plan = lossy_plan()
    first = Cluster(n_nodes=4, seed=3, faults=plan).run(tiny_radix())
    second = Cluster(n_nodes=4, seed=3, faults=plan).run(tiny_radix())
    assert fingerprint(first) == fingerprint(second)
    assert first.stats.total_packets_dropped > 0
    assert first.stats.total_retransmissions > 0
    assert first.stats.total_reassembly_leaks == 0
    # Loss costs time: retransmission timeouts land on the critical path.
    baseline = Cluster(n_nodes=4, seed=3).run(tiny_radix())
    assert first.runtime_us > baseline.runtime_us


def test_lossy_run_output_still_validates():
    # RadixSort.finalize asserts the distributed sort's output, so a
    # completed run proves the host-visible stream was exactly-once.
    result = Cluster(n_nodes=4, seed=5,
                     faults=lossy_plan()).run(tiny_radix())
    assert result.output is not None


def test_faults_only_allowed_on_flat_fabric():
    with pytest.raises(ValueError, match="flat"):
        Cluster(n_nodes=4, fabric="myrinet", faults=lossy_plan())


# ---------------------------------------------------------------------------
# Structured failure: a dead link exhausts retries.
# ---------------------------------------------------------------------------

def test_total_loss_raises_retry_exhausted():
    plan = FaultPlan(drop_rate=1.0, retx_timeout_us=10.0, max_retries=2)
    with pytest.raises(RetryExhausted) as exc_info:
        Cluster(n_nodes=2, seed=0, faults=plan).run(tiny_radix())
    assert exc_info.value.attempts == 2


def test_sweep_surfaces_retry_exhausted_as_na_point():
    plan = FaultPlan(retx_timeout_us=10.0, max_retries=2)
    sweep = fault_sweep(tiny_radix(), 2, drop_rates=(1.0,),
                        base_plan=plan, seed=0)
    point = sweep.points[0]
    assert not point.completed
    assert point.failure.startswith("fault:")
    assert point.failure_category == "fault"
    # Satellite: a failed baseline must not crash row generation...
    rows = sweep.as_rows()
    assert all(row["slowdown"] == "N/A" for row in rows)
    assert all(row["runtime_us"] == "N/A" for row in rows)
    # ...while the strict accessors still raise, as before.
    with pytest.raises(RuntimeError, match="baseline"):
        sweep.slowdowns()
    with pytest.raises(RuntimeError, match="baseline"):
        sweep.series()


def test_as_rows_failed_baseline_with_completed_points():
    good = Cluster(n_nodes=2, seed=0).run(tiny_radix())
    sweep = SweepResult(app_name="Radix", n_nodes=2, parameter="drop_rate")
    sweep.points = [
        SweepPoint(value=0.0, knobs=TuningKnobs(),
                   failure="fault: dead link"),
        SweepPoint(value=0.01, knobs=TuningKnobs(), result=good),
    ]
    rows = sweep.as_rows()
    assert rows[0]["runtime_us"] == "N/A"
    assert rows[1]["runtime_us"] != "N/A"
    assert [row["slowdown"] for row in rows] == ["N/A", "N/A"]


# ---------------------------------------------------------------------------
# The fault sweep: determinism + run cache (the acceptance criterion).
# ---------------------------------------------------------------------------

def sweep_fingerprint(sweep):
    return [(p.value, p.runtime_us,
             p.result.events_processed if p.completed else None,
             p.failure) for p in sweep.points]


def test_fault_sweep_is_deterministic_and_cacheable(tmp_path):
    cache = RunCache(tmp_path / "cache")
    rates = (0.0, 0.02)
    first = fault_sweep(tiny_radix(), 4, drop_rates=rates, seed=3,
                        base_plan=lossy_plan(), cache=cache)
    second = fault_sweep(tiny_radix(), 4, drop_rates=rates, seed=3,
                         base_plan=lossy_plan(), cache=cache)
    assert sweep_fingerprint(first) == sweep_fingerprint(second)
    assert cache.hits == len(rates)  # the whole second pass was cached
    lossy = second.points[1]
    assert lossy.result.stats.total_retransmissions > 0
    assert lossy.runtime_us > second.baseline.runtime_us


def test_null_plan_shares_cache_key_with_no_plan():
    app = tiny_radix()
    params = LogGPParams.berkeley_now()
    bare = run_key_spec(app, 4, params, TuningKnobs(), seed=3)
    nulled = run_key_spec(app, 4, params, TuningKnobs(), seed=3,
                          faults=FaultPlan())
    lossy = run_key_spec(app, 4, params, TuningKnobs(), seed=3,
                         faults=lossy_plan())
    assert bare == nulled
    assert lossy != bare and lossy["faults"] is not None


# ---------------------------------------------------------------------------
# Delay spikes: propagation and FIFO ordering.
# ---------------------------------------------------------------------------

class _NicHarness:
    """Two directly-wired NICs with a scripted wire for unit tests."""

    def __init__(self, knobs=None, plan=None, seed=0):
        self.sim = Simulator()
        params = LogGPParams.berkeley_now()
        knobs = knobs if knobs is not None else TuningKnobs()
        injector = FaultInjector(plan, seed) if plan is not None else None
        self.wire = Wire(self.sim, params.latency, injector=injector)
        self.delivered = []
        self.credits = []
        self.sender = Nic(self.sim, 0, params, knobs, self.wire,
                          deliver_to_host=lambda p: None,
                          return_credit=self.credits.append)
        self.receiver = Nic(self.sim, 1, params, knobs, self.wire,
                            deliver_to_host=self.delivered.append,
                            return_credit=lambda x: None)


def test_delay_queue_keeps_fifo_order_under_spike():
    # A spike compresses distinct arrival times onto the window's end;
    # the delta_L delay queue must still deliver in injection order.
    plan = FaultPlan(spikes=(DelaySpike(node=1, start_us=0.0,
                                        duration_us=200.0),))
    harness = _NicHarness(knobs=TuningKnobs(delta_L=25.0), plan=plan)
    packets = [Packet(kind=PacketKind.REQUEST, src=0, dst=1,
                      handler="h", payload=i) for i in range(5)]
    for packet in packets:
        harness.sender.enqueue(packet)
    harness.sim.run()
    assert [p.payload for p in harness.delivered] == [0, 1, 2, 3, 4]
    # Every packet was held until the spike window closed, then queued
    # for delta_L: first delivery at end_us + delta_L.
    assert harness.delivered[0] is packets[0]


def test_delay_queue_fifo_without_faults():
    harness = _NicHarness(knobs=TuningKnobs(delta_L=25.0))
    packets = [Packet(kind=PacketKind.REQUEST, src=0, dst=1,
                      handler="h", payload=i) for i in range(4)]
    for packet in packets:
        harness.sender.enqueue(packet)
    harness.sim.run()
    assert [p.payload for p in harness.delivered] == [0, 1, 2, 3]


def test_spike_holds_packets_until_window_end():
    plan = FaultPlan(spikes=(DelaySpike(node=1, start_us=0.0,
                                        duration_us=100.0),))
    harness = _NicHarness(plan=plan)
    harness.sender.enqueue(Packet(kind=PacketKind.REQUEST, src=0, dst=1,
                                  handler="h"))
    harness.sim.run()
    assert harness.delivered
    assert harness.sim.now >= 100.0
    assert harness.wire.injector.packets_spiked == 1


def test_slowdown_window_stretches_transit():
    plan = FaultPlan(slowdowns=(SlowdownWindow(node=1, start_us=0.0,
                                               duration_us=50.0,
                                               factor=4.0),))
    injector = FaultInjector(plan, seed=0)
    packet = Packet(kind=PacketKind.REQUEST, src=0, dst=1)
    assert injector.transit_delay(packet, now=10.0, base_latency=5.0) \
        == pytest.approx(20.0)
    # Outside the window the wire is back to normal.
    assert injector.transit_delay(packet, now=60.0, base_latency=5.0) \
        == pytest.approx(5.0)


def test_spike_decay_sweep_residual_shrinks_with_late_spikes():
    sweep = spike_decay_sweep(tiny_radix(), 4, node=0,
                              duration_us=400.0,
                              starts=(200.0, 10_000_000.0), seed=3)
    base = sweep.baseline.runtime_us
    early, late = sweep.points[1], sweep.points[2]
    # A spike inside the run surfaces in the runtime; one scheduled far
    # past the end of the run cannot.
    assert early.runtime_us > base
    assert late.runtime_us == pytest.approx(base)


# ---------------------------------------------------------------------------
# Credit loss (the CREDIT-retransmission satellite).
# ---------------------------------------------------------------------------

class _OneWayFlood(Application):
    """Rank 0 floods rank 1 with one-way messages (credit-bound)."""

    name = "oneway-flood"

    def register_handlers(self, table):
        table.register("flood_sink", lambda am, pkt: None)

    def run_rank(self, proc):
        if proc.rank == 0:
            for _ in range(32):
                yield from proc.am.send_oneway(1, "flood_sink")
        else:
            yield from proc.compute(1.0)


def test_dropped_credits_are_retransmitted_not_deadlocked():
    # Drop only CREDIT packets: the data arrives, but flow-control
    # credits are lost and must be retransmitted or the sender's window
    # starves forever.
    plan = FaultPlan(drop_rate=0.5, drop_kinds=("credit",),
                     retx_timeout_us=60.0, max_retries=20)
    result = Cluster(n_nodes=2, seed=1, faults=plan,
                     run_limit_us=1_000_000.0).run(_OneWayFlood())
    assert result.stats.total_packets_dropped > 0
    assert result.stats.total_retransmissions > 0
    # Retransmitted credits come from the receiving node (node 1).
    assert result.stats.retransmissions[1] > 0


def test_drop_kinds_narrowing_leaves_other_kinds_alone():
    plan = FaultPlan(drop_rate=1.0, drop_kinds=("ack",))
    injector = FaultInjector(plan, seed=0)
    request = Packet(kind=PacketKind.REQUEST, src=0, dst=1)
    # Non-droppable kinds never consume a draw and are never dropped.
    for _ in range(16):
        assert injector.transit_delay(request, 0.0, 5.0) is not None
    assert injector.packets_dropped == 0


# ---------------------------------------------------------------------------
# Fragment reassembly (the distinct-index satellite).
# ---------------------------------------------------------------------------

def bulk_fragment(index, count, xfer_id=77, **kw):
    return Packet(kind=PacketKind.BULK_FRAGMENT, src=0, dst=1,
                  size_bytes=64, fragment=(index, count), is_bulk=True,
                  xfer_id=xfer_id, **kw)


def test_duplicate_fragment_does_not_complete_transfer():
    harness = _NicHarness()
    nic = harness.receiver
    nic.receive_from_wire(bulk_fragment(0, 2))
    nic.receive_from_wire(bulk_fragment(0, 2))  # duplicate, not index 1
    assert harness.delivered == []  # the pre-fix counter would deliver
    nic.receive_from_wire(bulk_fragment(1, 2, handler="h", payload="tail"))
    assert len(harness.delivered) == 1
    assert harness.delivered[0].payload == "tail"


def test_out_of_order_final_fragment_is_stashed():
    harness = _NicHarness()
    nic = harness.receiver
    last = bulk_fragment(1, 2, handler="h", payload="tail")
    nic.receive_from_wire(last)  # final fragment arrives first
    assert harness.delivered == []
    nic.receive_from_wire(bulk_fragment(0, 2))
    assert harness.delivered == [last]


def test_reassembly_teardown_reports_and_clears_leaks():
    harness = _NicHarness()
    nic = harness.receiver
    nic.receive_from_wire(bulk_fragment(0, 3, xfer_id=1))
    nic.receive_from_wire(bulk_fragment(0, 2, xfer_id=2))
    assert nic.reassembly_teardown() == 2
    assert nic.reassembly_teardown() == 0  # state actually cleared


def test_cluster_records_reassembly_leaks_as_zero_when_reliable():
    result = Cluster(n_nodes=4, seed=0).run(tiny_radix())
    assert result.stats.total_reassembly_leaks == 0


# ---------------------------------------------------------------------------
# Transmit-busy accounting (the tx_busy_until satellite).
# ---------------------------------------------------------------------------

def test_transmit_busy_fraction_is_sane():
    result = Cluster(n_nodes=4, seed=0).run(tiny_radix())
    fractions = result.stats.transmit_busy_fraction
    assert fractions.shape == (4,)
    assert (fractions > 0.0).all()
    assert (fractions <= 1.0).all()


def test_stats_roundtrip_preserves_fault_counters():
    from repro.instruments.stats import ClusterStats
    result = Cluster(n_nodes=4, seed=3,
                     faults=lossy_plan()).run(tiny_radix())
    restored = ClusterStats.from_dict(result.stats.to_dict())
    assert restored.total_packets_dropped == \
        result.stats.total_packets_dropped
    assert restored.total_retransmissions == \
        result.stats.total_retransmissions
    assert (restored.tx_busy_us == result.stats.tx_busy_us).all()
