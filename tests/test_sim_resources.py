"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Resource, Simulator, Store
from repro.sim.resources import ResourceError


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    first, second, third = res.request(), res.request(), res.request()
    assert first.triggered and second.triggered
    assert not third.triggered
    assert res.in_use == 2 and res.queue_length == 1


def test_resource_release_wakes_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(tag, hold):
        req = res.request()
        yield req
        order.append(("got", tag, sim.now))
        yield sim.timeout(hold)
        res.release()

    sim.process(user("a", 5.0))
    sim.process(user("b", 3.0))
    sim.process(user("c", 1.0))
    sim.run()
    assert order == [("got", "a", 0.0), ("got", "b", 5.0),
                     ("got", "c", 8.0)]


def test_resource_release_idle_is_error():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(ResourceError):
        res.release()


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_cancel_pending_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    granted = res.request()
    pending = res.request()
    assert res.cancel(pending) is True
    assert res.queue_length == 0
    assert res.cancel(granted) is False  # already granted, not queued


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)

    def body():
        store.put("x")
        item = yield store.get()
        return item

    proc = sim.process(body())
    assert sim.run(stop_event=proc) == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    log = []

    def consumer():
        item = yield store.get()
        log.append((item, sim.now))

    def producer():
        yield sim.timeout(7.0)
        store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert log == [("late", 7.0)]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    for value in range(5):
        store.put(value)
    received = []

    def consumer():
        for _ in range(5):
            item = yield store.get()
            received.append(item)

    sim.process(consumer())
    sim.run()
    assert received == [0, 1, 2, 3, 4]


def test_store_capacity_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        first = store.put("a")
        yield first
        second = store.put("b")
        yield second
        log.append(("b stored", sim.now))

    def consumer():
        yield sim.timeout(4.0)
        item = yield store.get()
        log.append(("got", item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("got", "a", 4.0) in log
    assert ("b stored", 4.0) in log


def test_store_direct_handoff_to_waiting_getter():
    sim = Simulator()
    store = Store(sim)
    get_event = store.get()
    assert not get_event.triggered
    store.put(42)
    sim.run()
    assert get_event.value == 42
    assert len(store) == 0


def test_store_len_and_peek():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.peek_items() == (1, 2)
