"""Golden-finding tests: each shipped rule pack against its fixtures.

Every rule must (a) flag each annotated line of its ``*_bad`` fixture
and (b) stay silent on the ``*_good`` twin — the known-good/known-bad
pairing that proves a rule detects the bug class without false alarms.
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_file, default_rules

FIXTURES = Path(__file__).parent / "fixtures" / "simlint"


def findings_for(name):
    return analyze_file(FIXTURES / name, default_rules())


def lines_by_rule(findings, rule):
    return sorted(f.line for f in findings if f.rule == rule)


# -- determinism pack -------------------------------------------------------

def test_determinism_bad_fixture_golden_findings():
    findings = findings_for("determinism_bad.py")
    assert lines_by_rule(findings, "wall-clock") == [12, 13]
    assert lines_by_rule(findings, "env-read") == [18, 19]
    assert lines_by_rule(findings, "unseeded-rng") == [24, 25, 26]
    assert lines_by_rule(findings, "seed-independent-rng") == [32]
    assert lines_by_rule(findings, "set-iteration") == [38, 41, 43]
    assert len(findings) == 11


def test_determinism_good_fixture_is_clean():
    assert findings_for("determinism_good.py") == []


def test_seed_independent_rule_flags_the_em3d_bug_pattern():
    """The exact pre-fix em3d construction must be caught."""
    from repro.analysis.core import SourceFile, analyze_source
    source = SourceFile("apps/em3d.py", (
        "import numpy as np\n"
        "def setup_rank(self, proc):\n"
        "    rng = np.random.RandomState(proc.rank + 17)\n"
    ))
    findings = analyze_source(source, default_rules())
    assert lines_by_rule(findings, "seed-independent-rng") == [3]


def test_seed_independent_rule_accepts_fault_injector_derivation():
    """The fault injector's seed derivation (run seed mixed with the
    plan's salt) must lint clean — it is the sanctioned pattern."""
    from repro.analysis.core import SourceFile, analyze_source
    source = SourceFile("network/faults.py", (
        "import numpy as np\n"
        "def __init__(self, plan, seed):\n"
        "    derived_seed = (seed * 1000003 + plan.salt * 7919) % 2**32\n"
        "    self._rng = np.random.RandomState(derived_seed)\n"
    ))
    findings = analyze_source(source, default_rules())
    assert lines_by_rule(findings, "seed-independent-rng") == []


def test_seed_independent_rule_flags_salt_only_fault_rng():
    """A fault RNG keyed only on the plan's salt replays one stream for
    every --seed: the bug class the derivation rule exists to stop."""
    from repro.analysis.core import SourceFile, analyze_source
    source = SourceFile("network/faults.py", (
        "import numpy as np\n"
        "def __init__(self, plan, run_seed):\n"
        "    self._rng = np.random.RandomState(plan.salt * 7919)\n"
    ))
    findings = analyze_source(source, default_rules())
    assert lines_by_rule(findings, "seed-independent-rng") == [3]


# -- SPMD / generator-contract pack ----------------------------------------

def test_spmd_bad_fixture_golden_findings():
    findings = findings_for("spmd_bad.py")
    assert lines_by_rule(findings, "unyielded-blocking-call") == \
        [6, 7, 9, 13]
    assert lines_by_rule(findings, "rank-dependent-collective") == \
        [17, 20]
    assert lines_by_rule(findings, "handler-arity") == [26, 27]
    assert len(findings) == 8


def test_spmd_good_fixture_is_clean():
    assert findings_for("spmd_good.py") == []


def test_handler_purity_bad_fixture_golden_findings():
    findings = findings_for("handler_purity_bad.py")
    assert lines_by_rule(findings, "handler-purity") == [5, 10, 18]
    assert len(findings) == 3


def test_handler_purity_good_fixture_is_clean():
    assert findings_for("handler_purity_good.py") == []


def test_coll_bad_fixture_golden_findings():
    """The repro.coll entry points are covered by every SPMD rule."""
    findings = findings_for("coll_bad.py")
    assert lines_by_rule(findings, "unyielded-blocking-call") == [6, 7]
    assert lines_by_rule(findings, "rank-dependent-collective") == \
        [13, 17]
    assert lines_by_rule(findings, "handler-purity") == [26]
    assert len(findings) == 5


def test_coll_good_fixture_is_clean():
    assert findings_for("coll_good.py") == []


# -- hygiene pack -----------------------------------------------------------

def test_hygiene_bad_fixture_golden_findings():
    findings = findings_for("hygiene_bad.py")
    assert lines_by_rule(findings, "broad-except") == [7, 14]
    assert lines_by_rule(findings, "mutable-default-arg") == [18, 23]
    assert len(findings) == 4


def test_hygiene_good_fixture_is_clean():
    assert findings_for("hygiene_good.py") == []


def test_module_mutable_state_only_fires_under_apps():
    findings = findings_for("apps/stateful_module.py")
    assert lines_by_rule(findings, "module-mutable-state") == [3, 4]
    assert len(findings) == 2
    # The same content outside an apps/ directory is not flagged.
    from repro.analysis.core import SourceFile, analyze_source
    text = (FIXTURES / "apps" / "stateful_module.py").read_text()
    source = SourceFile("tools/stateful_module.py", text)
    assert analyze_source(source, default_rules()) == []


# -- dial-cost pack ---------------------------------------------------------

def test_dialcost_bad_fixture_golden_findings():
    findings = findings_for("network/dialcost_bad.py")
    assert lines_by_rule(findings, "untracked-dial-cost") == [5, 6, 11]
    assert len(findings) == 3


def test_dialcost_good_fixture_is_clean():
    assert findings_for("network/dialcost_good.py") == []


def test_dialcost_only_fires_under_am_or_network():
    """The same content outside am//network/ is not this rule's beat."""
    from repro.analysis.core import SourceFile, analyze_source
    text = (FIXTURES / "network" / "dialcost_bad.py").read_text()
    for path in ("apps/radix.py", "harness/sweeps.py"):
        source = SourceFile(path, text)
        findings = analyze_source(source, default_rules())
        assert lines_by_rule(findings, "untracked-dial-cost") == []
    source = SourceFile("am/layer.py", text)
    findings = analyze_source(source, default_rules())
    assert lines_by_rule(findings, "untracked-dial-cost") == [5, 6, 11]


def test_dialcost_real_messaging_layers_are_clean():
    """The shipped am/ and network/ trees must satisfy their own rule."""
    import pathlib
    import repro
    root = pathlib.Path(repro.__file__).parent
    for layer in ("am", "network"):
        for path in sorted((root / layer).glob("*.py")):
            findings = analyze_file(path, default_rules())
            assert lines_by_rule(findings, "untracked-dial-cost") == [], \
                f"{path} charges a hard-coded duration"


# -- rule catalogue ---------------------------------------------------------

def test_every_rule_has_at_least_one_failing_fixture():
    """Acceptance: each shipped rule detects something in the fixtures."""
    all_findings = []
    for name in ("determinism_bad.py", "spmd_bad.py",
                 "handler_purity_bad.py", "hygiene_bad.py",
                 "apps/stateful_module.py", "network/dialcost_bad.py"):
        all_findings.extend(findings_for(name))
    fired = {f.rule for f in all_findings}
    from repro.analysis import all_rules
    assert fired == set(all_rules())


@pytest.mark.parametrize("name", ["determinism_good.py",
                                  "spmd_good.py",
                                  "handler_purity_good.py",
                                  "hygiene_good.py",
                                  "coll_good.py",
                                  "network/dialcost_good.py",
                                  "suppressed.py"])
def test_clean_fixtures_produce_no_findings(name):
    assert findings_for(name) == []
