"""Unit tests for LogGPParams, packets, wire, NIC, and TuningKnobs."""

import pytest

from repro.am.tuning import TuningKnobs
from repro.network.loggp import LogGPParams
from repro.network.packet import (BULK_FRAGMENT_BYTES, Packet,
                                  PacketKind, new_xfer_id)
from repro.network.wire import Wire
from repro.cluster.presets import MACHINE_PRESETS, preset
from repro.sim import Simulator


# -- LogGPParams ---------------------------------------------------------------

def test_berkeley_now_matches_table1():
    now = LogGPParams.berkeley_now()
    assert now.overhead == pytest.approx(2.9)
    assert now.gap == 5.8
    assert now.latency == 5.0
    assert now.bulk_bandwidth_mb_s == pytest.approx(38.0)


def test_paragon_and_meiko_match_table1():
    paragon = LogGPParams.intel_paragon()
    assert paragon.bulk_bandwidth_mb_s == pytest.approx(141.0)
    meiko = LogGPParams.meiko_cs2()
    assert meiko.gap == 13.6


def test_capacity_is_ceil_L_over_g():
    params = LogGPParams(latency=20.0, gap=6.0)
    assert params.capacity == 4
    assert LogGPParams(latency=1.0, gap=6.0).capacity == 1


def test_with_changes_is_pure():
    now = LogGPParams.berkeley_now()
    slower = now.with_changes(latency=50.0)
    assert slower.latency == 50.0
    assert now.latency == 5.0


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        LogGPParams(latency=-1.0)
    with pytest.raises(ValueError):
        LogGPParams(gap=0.0)


def test_describe_is_informative():
    text = LogGPParams.berkeley_now().describe()
    assert "o=2.9" in text and "38MB/s" in text


# -- presets --------------------------------------------------------------------

def test_preset_lookup():
    assert preset("berkeley-now") == LogGPParams.berkeley_now()
    with pytest.raises(KeyError):
        preset("cray-t3e")
    assert "lan-tcp" in MACHINE_PRESETS


# -- packets ----------------------------------------------------------------------

def test_packet_to_self_rejected():
    with pytest.raises(ValueError):
        Packet(kind=PacketKind.REQUEST, src=3, dst=3)


def test_fragment_size_limit():
    with pytest.raises(ValueError):
        Packet(kind=PacketKind.BULK_FRAGMENT, src=0, dst=1,
               size_bytes=BULK_FRAGMENT_BYTES + 1, fragment=(0, 1))


def test_fragment_index_validation():
    with pytest.raises(ValueError):
        Packet(kind=PacketKind.BULK_FRAGMENT, src=0, dst=1,
               size_bytes=10, fragment=(2, 2))


def test_logical_bytes_prefers_message_bytes():
    packet = Packet(kind=PacketKind.BULK_FRAGMENT, src=0, dst=1,
                    size_bytes=100, message_bytes=9000, fragment=(1, 2))
    assert packet.logical_bytes == 9000
    assert packet.is_last_fragment


def test_xfer_ids_are_unique():
    ids = {new_xfer_id() for _ in range(100)}
    assert len(ids) == 100


# -- wire -------------------------------------------------------------------------

class _StubNic:
    def __init__(self):
        self.received = []

    def receive_from_wire(self, packet):
        self.received.append(packet)


def test_wire_delivers_after_latency():
    sim = Simulator()
    wire = Wire(sim, latency=7.5)
    nic = _StubNic()
    wire.attach(1, nic)
    packet = Packet(kind=PacketKind.REQUEST, src=0, dst=1)
    wire.carry(packet)
    assert nic.received == []
    sim.run()
    assert sim.now == 7.5
    assert nic.received == [packet]
    assert wire.packets_carried == 1
    assert wire.in_flight == 0


def test_wire_unattached_destination_errors():
    sim = Simulator()
    wire = Wire(sim, latency=1.0)
    with pytest.raises(KeyError):
        wire.carry(Packet(kind=PacketKind.REQUEST, src=0, dst=9))


def test_wire_double_attach_rejected():
    sim = Simulator()
    wire = Wire(sim, latency=1.0)
    wire.attach(0, _StubNic())
    with pytest.raises(ValueError):
        wire.attach(0, _StubNic())


def test_wire_tracks_in_flight_high_water():
    sim = Simulator()
    wire = Wire(sim, latency=10.0)
    nic = _StubNic()
    wire.attach(1, nic)
    for _ in range(5):
        wire.carry(Packet(kind=PacketKind.REQUEST, src=0, dst=1))
    assert wire.in_flight == 5
    sim.run()
    assert wire.max_in_flight == 5
    assert len(nic.received) == 5


# -- tuning knobs ------------------------------------------------------------------

def test_knobs_baseline_detection():
    assert TuningKnobs().is_baseline
    assert not TuningKnobs(delta_o=1.0).is_baseline


def test_knobs_reject_negative():
    with pytest.raises(ValueError):
        TuningKnobs(delta_L=-1.0)


def test_knobs_effective_parameters():
    base = LogGPParams.berkeley_now()
    knobs = TuningKnobs(delta_o=10.0, delta_g=4.2, delta_L=25.0)
    effective = knobs.effective(base)
    assert effective.overhead == pytest.approx(12.9)
    assert effective.gap == pytest.approx(10.0)
    assert effective.latency == pytest.approx(30.0)


def test_knobs_describe():
    assert TuningKnobs().describe() == "baseline"
    assert "+o=5.0us" in TuningKnobs(delta_o=5.0).describe()


def test_bulk_bandwidth_dial_rejects_nonpositive():
    with pytest.raises(ValueError):
        TuningKnobs.bulk_bandwidth(0.0, LogGPParams.berkeley_now())
