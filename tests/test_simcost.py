"""simcost: the recorder observes, the replay predicts.

Three contracts pinned here:

1. **Bit-identity** — recording a run changes nothing about it: same
   ``runtime_us``, same ``events_processed``, same stats dict, and the
   RunCache key space never mentions the recorder (the simsan
   precedent).
2. **Replay fidelity** — re-evaluating the recorded DAG at the
   *recorded* dials reproduces the measured runtime (near-exactly),
   and predicted slowdown curves for dialed grids stay within the 10%
   median-relative-error acceptance gate against real simulations.
3. **Refusal honesty** — regimes the replay model cannot reproduce
   (occupancy dial, faults, non-flat fabrics) are refused loudly at
   record and predict time, never silently mispredicted.
"""

import inspect
import json
import statistics

import pytest

from repro.am.tuning import TuningKnobs
from repro.apps import Barnes, RadixSort
from repro.cluster.machine import Cluster
from repro.cost import (CostGraph, DepRecorder, PredictedSweep,
                        UnsupportedGraphError, latency_tolerance, lp_bound,
                        predict_runtime, predict_sweep, record_run)
from repro.harness.runcache import run_key_spec
from repro.harness.sweeps import knob_factory, predicted_sweep, run_sweep
from repro.network.faults import FaultPlan


def small_radix():
    return RadixSort(keys_per_proc=32)


def small_barnes():
    return Barnes(bodies_per_proc=4)


@pytest.fixture(scope="module")
def radix_graph():
    graph, result = record_run(small_radix(), 4, seed=7)
    return graph, result


@pytest.fixture(scope="module")
def barnes_graph():
    graph, result = record_run(small_barnes(), 4, seed=7)
    return graph, result


# ---------------------------------------------------------------------------
# 1. Observation-only: recording never perturbs the run.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("make_app", [small_radix, small_barnes],
                         ids=["radix", "barnes"])
def test_recorded_run_is_bit_identical_to_plain_run(make_app):
    plain = Cluster(n_nodes=4, seed=7).run(make_app())
    recorder = DepRecorder()
    recorded = Cluster(n_nodes=4, seed=7).run(make_app(),
                                              recorder=recorder)
    assert recorded.runtime_us == plain.runtime_us
    assert recorded.events_processed == plain.events_processed
    assert recorded.stats.to_dict() == plain.stats.to_dict()
    assert recorder.graph is not None
    assert recorder.graph.runtime_us == plain.runtime_us


def test_recorder_is_not_part_of_the_cache_key_space():
    """Like sanitize/engine, recording must not fork the cache."""
    assert "recorder" not in inspect.signature(run_key_spec).parameters
    spec = run_key_spec(small_radix(), 4,
                        Cluster(n_nodes=4).params, TuningKnobs(), seed=7)
    assert "recorder" not in json.dumps(spec)


# ---------------------------------------------------------------------------
# 2. Replay fidelity.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fixture_name", ["radix_graph", "barnes_graph"])
def test_baseline_replay_matches_measured_runtime(fixture_name, request):
    graph, result = request.getfixturevalue(fixture_name)
    predicted = predict_runtime(graph)
    assert predicted == pytest.approx(result.runtime_us, rel=0.02)


@pytest.mark.parametrize("parameter,values", [
    ("overhead", (2.9, 12.9, 52.9)),
    ("latency", (5.0, 15.0, 55.0)),
], ids=["overhead", "latency"])
def test_predicted_slowdowns_within_error_gate(radix_graph, parameter,
                                               values):
    """Acceptance: median relative error <= 10% on the reduced grid."""
    graph, _ = radix_graph
    predicted = predict_sweep(graph, parameter, values)
    simulated = run_sweep(small_radix(), 4, parameter, values,
                          knob_factory(parameter, graph.params), seed=7)
    errs = [abs(p - s) / s
            for p, s in zip(predicted.slowdowns(), simulated.slowdowns())]
    assert statistics.median(errs) <= 0.10, errs


def test_predicted_sweep_via_harness_entry_point():
    sweep = predicted_sweep(small_radix(), 4, "overhead",
                            (2.9, 12.9), seed=7)
    assert isinstance(sweep, PredictedSweep)
    assert sweep.simulations_used == 1
    assert sweep.values() == [2.9, 12.9]
    slow = sweep.slowdowns()
    assert slow[0] == pytest.approx(1.0)
    assert slow[1] > 2.0  # 10 extra us of o each way hurts a 4-node sort
    assert sweep.series() == list(zip(sweep.values(), slow))
    rows = sweep.as_rows()
    assert rows[0]["app"] == sweep.app_name
    assert all(row["failure"] == "" for row in rows)  # never fails: no sim


def test_predicted_sweep_reuses_supplied_graph(radix_graph):
    graph, _ = radix_graph
    sweep = predicted_sweep(small_radix(), 4, "gap", (5.8, 55.0),
                            seed=7, graph=graph)
    assert sweep.simulations_used == 0  # no new simulation at all
    assert sweep.slowdowns()[1] > 1.0


def test_latency_tolerance_and_lp_bound(radix_graph):
    graph, result = radix_graph
    crossing = latency_tolerance(graph, "overhead", threshold=2.0)
    assert crossing is not None and crossing > graph.params.overhead
    # The crossing is self-consistent: replaying at it gives ~2x.
    knobs = knob_factory("overhead", graph.params)(crossing)
    baseline = predict_runtime(graph)
    assert predict_runtime(graph, knobs) / baseline == \
        pytest.approx(2.0, rel=0.02)
    # The LP lower bound never exceeds the critical-path estimate.
    assert lp_bound(graph) <= baseline + 1e-9
    assert lp_bound(graph) > 0.0


# ---------------------------------------------------------------------------
# Graph serialisation.
# ---------------------------------------------------------------------------

def test_graph_json_round_trip(radix_graph):
    graph, _ = radix_graph
    clone = CostGraph.from_json(graph.to_json())
    assert clone.to_dict() == graph.to_dict()
    assert clone.counts() == graph.counts()
    assert predict_runtime(clone) == predict_runtime(graph)


def test_graph_schema_mismatch_refuses(radix_graph):
    graph, _ = radix_graph
    payload = graph.to_dict()
    payload["schema"] = "repro-cost-graph-v0"
    with pytest.raises(ValueError, match="schema"):
        CostGraph.from_dict(payload)


# ---------------------------------------------------------------------------
# 3. Refusal honesty: unsupported regimes fail loudly.
# ---------------------------------------------------------------------------

def test_predict_refuses_occupancy_dial(radix_graph):
    graph, _ = radix_graph
    with pytest.raises(UnsupportedGraphError):
        predict_runtime(graph, TuningKnobs(delta_occ=1.0))


def test_record_refuses_occupancy_dialed_cluster():
    with pytest.raises(ValueError, match="delta_occ"):
        Cluster(n_nodes=4, seed=7,
                knobs=TuningKnobs(delta_occ=1.0)).run(
            small_radix(), recorder=DepRecorder())


def test_record_refuses_faulty_and_nonflat_fabrics():
    plan = FaultPlan(drop_rate=0.01)
    with pytest.raises(ValueError, match="fault"):
        Cluster(n_nodes=4, seed=7, faults=plan).run(
            small_radix(), recorder=DepRecorder())
    with pytest.raises(ValueError, match="flat"):
        Cluster(n_nodes=4, seed=7, fabric="ethernet").run(
            small_radix(), recorder=DepRecorder())


def test_record_refuses_open_system_apps():
    """Open-system serving has no closed SPMD dependency DAG to
    replay: arrivals come from outside the rank set, so both recording
    entry points refuse with the honest simcost error."""
    from repro.serve import KVServe
    app = KVServe(offered_rps=50_000.0, n_users=100,
                  duration_us=1_000.0, max_requests=10)
    with pytest.raises(UnsupportedGraphError, match="open-system"):
        record_run(app, 2, seed=0)
    with pytest.raises(UnsupportedGraphError, match="open-system"):
        Cluster(n_nodes=2, seed=0).run(app, recorder=DepRecorder())


def test_recorder_is_single_use(radix_graph):
    recorder = DepRecorder()
    Cluster(n_nodes=4, seed=7).run(small_radix(), recorder=recorder)
    with pytest.raises(RuntimeError):
        Cluster(n_nodes=4, seed=7).run(small_radix(), recorder=recorder)


# ---------------------------------------------------------------------------
# CLI contract: exit 0 / 1 / 2.
# ---------------------------------------------------------------------------

def test_cli_predict_json_payload(tmp_path, capsys):
    from repro.cost.cli import main
    out = tmp_path / "radix.json"
    main(["record", "--app", "Radix", "--nodes", "4", "--scale", "0.05",
          "--seed", "7", "--out", str(out)])
    capsys.readouterr()
    assert main(["predict", str(out), "--parameter", "overhead",
                 "--values", "2.9,12.9", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-simcost-predict-v1"
    assert payload["simulations_used"] == 0
    assert [p["value"] for p in payload["points"]] == [2.9, 12.9]
    assert payload["points"][0]["slowdown"] == pytest.approx(1.0)


def test_cli_report_gates_on_median_error(tmp_path, capsys):
    from repro.cost.cli import main
    argv = ["report", "--apps", "Radix", "--nodes", "4", "--scale",
            "0.002", "--seed", "7", "--parameter", "overhead",
            "--values", "2.9,12.9,22.9", "--no-cache",
            "--bench-out", str(tmp_path / "bench.json")]
    assert main(argv + ["--max-median-error", "0.10"]) == 0
    bench = json.loads((tmp_path / "bench.json").read_text())
    assert bench["schema"] == "repro-simcost-bench-v1"
    assert bench["recordings"] == 1
    assert bench["predicted_points"] == 3
    assert bench["simulations_avoided_ratio"] == 3.0
    assert bench["median_rel_err"] <= 0.10
    capsys.readouterr()
    # An impossible gate turns the same report into exit 1.
    assert main(argv + ["--max-median-error", "-1.0"]) == 1


def test_cli_usage_errors_exit_2(capsys):
    from repro.cost.cli import main
    assert main(["report", "--apps", " ", "--no-cache"]) == 2
    with pytest.raises(SystemExit) as excinfo:
        main(["predict"])  # missing required graph path
    assert excinfo.value.code == 2
