"""Smoke tests for the experiment entry points at tiny scale.

The full shape assertions live in benchmarks/; these verify the
plumbing (structure, rendering, N/A handling) quickly.
"""

import pytest

from repro.harness import experiments


TINY = dict(n_nodes=4, scale=0.1)


def test_table3_structure():
    table = experiments.table3_baseline_runtimes(
        node_counts=(2, 4), scale=0.1, names=["Radix", "Connect"])
    assert set(table.runtimes) == {"Radix", "Connect"}
    rows = table.rows()
    assert all("2-node time (ms)" in row for row in rows)
    assert "Table 3" in table.render()


def test_figure4_structure():
    figure = experiments.figure4_balance(names=["Sample"], **TINY)
    matrices = figure.matrices()
    assert matrices["Sample"].shape == (4, 4)
    assert "Sample" in figure.render()


def test_table4_structure():
    table = experiments.table4_comm_summary(names=["Radb"], **TINY)
    rows = table.rows()
    assert rows[0]["Program"] == "Radb"
    assert "Table 4" in table.render()


def test_figure5_series_and_rows():
    figure = experiments.figure5_overhead(
        names=["Sample"], overheads=(2.9, 52.9), **TINY)
    sweep = figure.sweeps["Sample"]
    assert sweep.slowdowns()[0] == pytest.approx(1.0)
    assert sweep.slowdowns()[1] > 1.5
    assert figure.max_slowdown("Sample") > 1.5
    assert "slowdown" in figure.render()
    rows = figure.rows()
    assert {row["overhead"] for row in rows} == {2.9, 52.9}


def test_table5_structure_and_baseline_exactness():
    table = experiments.table5_overhead_model(
        names=["Sample"], overheads=(2.9, 52.9), **TINY)
    rows = table.rows()
    assert rows[0]["measured_us"] == rows[0]["predicted_us"]
    assert len(table.prediction_error("Sample")) == 2


def test_table6_structure():
    table = experiments.table6_gap_model(
        names=["Radb"], gaps=(5.8, 55.0), **TINY)
    assert len(table.rows()) == 2
    assert "Table 6" in table.render()


def test_figure7_and_8_structure():
    figure7 = experiments.figure7_latency(
        names=["Connect"], latencies=(5.0, 55.0), **TINY)
    assert figure7.max_slowdown("Connect") >= 1.0
    figure8 = experiments.figure8_bulk(
        names=["NOW-sort"], bandwidths=(38.0, 1.0), **TINY)
    assert figure8.max_slowdown("NOW-sort") >= 1.0


def test_cli_runs_a_single_artifact(tmp_path, capsys):
    from repro.harness.__main__ import main
    code = main(["--nodes", "4", "--scale", "0.1", "--only", "table4",
                 "--out", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "table4" in out
    assert (tmp_path / "table4.txt").exists()
