"""Differential equivalence: the calendar tier vs. the heap reference.

The calendar engine (``repro.sim.fastengine``) is only allowed to be
*faster* than the reference heap engine — never different.  These tests
enforce the bit-identity contract three ways:

* randomized differential fuzzing: the same scripted workload (mixed
  timeouts, zero-delay bursts, AnyOf/AllOf composites, spawned
  sub-processes, manually succeeded/failed events) runs on both engines
  and must produce the identical resume trace, final ``now``,
  ``events_processed``, and — when the workload fails — the identical
  exception at the identical time;
* targeted corners the fuzzer would only hit by luck: ``run(until)``
  horizon resume, the post-drain clock bump followed by zero-delay
  scheduling, step()-driven runs, and non-finite delay rejection;
* cluster-level identity: a full application run (including under
  simsan) is bit-identical across engines, and the engine knob never
  enters the run-cache key space.
"""

import random

import pytest

from repro.sim import ENGINES, Simulator
from repro.sim.events import Timeout

#: Quantized delays with deliberate repeats: ties at equal times are the
#: scheduler's hardest ordering case, so make them common.
DELAYS = (0.0, 0.0, 0.1, 0.5, 1.0, 1.0, 2.5, 7.3, 100.0)

N_MANUAL = 6


# ---------------------------------------------------------------------------
# Randomized differential fuzzing.
# ---------------------------------------------------------------------------

def _make_script(rng, depth=0):
    """A deterministic per-process op list (same for both engines)."""
    ops = ["timeout", "burst", "any_of", "all_of"]
    if depth == 0:
        ops += ["spawn", "manual"]
    script = []
    for _ in range(rng.randrange(3, 9)):
        kind = rng.choice(ops)
        if kind == "timeout":
            script.append(("timeout", rng.choice(DELAYS)))
        elif kind == "burst":
            script.append(("burst",
                           [rng.choice(DELAYS)
                            for _ in range(rng.randrange(2, 5))]))
        elif kind in ("any_of", "all_of"):
            script.append((kind,
                           [rng.choice(DELAYS)
                            for _ in range(rng.randrange(2, 4))]))
        elif kind == "spawn":
            script.append(("spawn", _make_script(rng, depth + 1)))
        else:
            script.append(("manual", rng.randrange(N_MANUAL)))
    return script


def _build_workload(sim, seed, may_fail):
    """Instantiate one seeded workload on ``sim``; returns the trace
    list (appended to during the run) and the process list."""
    rng = random.Random(seed)
    trace = []
    manual = [sim.event(name=f"manual:{i}") for i in range(N_MANUAL)]

    def body(pid, script):
        for op_i, op in enumerate(script):
            kind = op[0]
            try:
                if kind == "timeout":
                    got = yield sim.timeout(op[1], value=(pid, op_i))
                elif kind == "burst":
                    got = None
                    for delay in op[1]:
                        got = yield sim.timeout(delay)
                elif kind == "any_of":
                    got = yield sim.any_of(
                        [sim.timeout(d, value=d) for d in op[1]])
                    got = sorted(got.values())
                elif kind == "all_of":
                    got = yield sim.all_of(
                        [sim.timeout(d, value=d) for d in op[1]])
                    got = sorted(got.values())
                elif kind == "spawn":
                    got = yield sim.process(
                        body((pid, op_i), op[1]))
                else:
                    got = yield manual[op[1]]
            except RuntimeError as exc:
                got = f"caught:{exc}"
            trace.append((sim.now, pid, op_i, got))
        return pid

    scripts = [_make_script(rng) for _ in range(rng.randrange(4, 10))]
    procs = [sim.process(body(pid, script), name=f"p{pid}")
             for pid, script in enumerate(scripts)]

    # The driver resolves every manual event exactly once at scripted
    # times; some fail.  A failed event nobody happens to be waiting on
    # surfaces as the run's exception — which must also be identical
    # across engines, so failing workloads are legal fuzz inputs.
    plan = [(rng.choice(DELAYS),
             idx,
             may_fail and rng.random() < 0.3)
            for idx in rng.sample(range(N_MANUAL), N_MANUAL)]

    def driver():
        for delay, idx, fail in plan:
            yield sim.timeout(delay)
            if fail:
                manual[idx].fail(RuntimeError(f"scripted failure {idx}"))
            else:
                manual[idx].succeed(("manual", idx))

    sim.process(driver(), name="driver")
    return trace, procs


def _run_workload(engine, seed, mode="run", may_fail=False):
    """One full seeded run; returns everything that must be identical."""
    sim = Simulator(engine=engine)
    trace, procs = _build_workload(sim, seed, may_fail)
    outcome = None
    error = None
    try:
        if mode == "run":
            sim.run()
        elif mode == "stop":
            done = sim.run(stop_event=sim.all_of(procs))
            outcome = sorted(map(repr, done.values()))
        elif mode == "until":
            # Several horizons, the last one past everything: exercises
            # horizon parking, resume, and the final clock bump.
            checkpoints = []
            for horizon in (1.0, 7.3, 50.0, 1e6):
                sim.run(until=horizon)
                checkpoints.append((sim.now, sim.events_processed))
            outcome = checkpoints
        elif mode == "step":
            while True:
                try:
                    sim.step()
                except RuntimeError as exc:
                    assert "no events" in str(exc)
                    break
    except (RuntimeError, TimeoutError) as exc:
        error = (type(exc).__name__, str(exc))
    return (trace, sim.now, sim.events_processed, outcome, error)


FUZZ_SEEDS = range(12)


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
@pytest.mark.parametrize("mode", ["run", "stop", "until", "step"])
def test_fuzz_engines_bit_identical(seed, mode):
    reference = _run_workload("heap", seed, mode=mode)
    candidate = _run_workload("calendar", seed, mode=mode)
    assert candidate == reference


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzz_failing_events_bit_identical(seed):
    reference = _run_workload("heap", seed, may_fail=True)
    candidate = _run_workload("calendar", seed, may_fail=True)
    assert candidate == reference
    # Sanity: with 12 seeds and 30% failure odds, some seed must
    # actually die — otherwise the fuzzer lost its failing arm.
    if seed == FUZZ_SEEDS[-1]:
        assert any(_run_workload("heap", s, may_fail=True)[4]
                   for s in FUZZ_SEEDS)


@pytest.mark.parametrize("seed", range(4))
def test_step_matches_run(seed):
    """step()-driven and run()-driven execution agree on both engines."""
    for engine in ENGINES:
        stepped = _run_workload(engine, seed, mode="step")
        ran = _run_workload(engine, seed, mode="run")
        assert stepped[:3] == ran[:3]


# ---------------------------------------------------------------------------
# Targeted corners.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ENGINES)
def test_until_clock_bump_then_zero_delay_schedule(engine):
    """After run(until) drains and bumps the clock, fresh zero-delay
    events must fire at the bumped time, in order (regression for the
    calendar tier's current-bucket index going stale at the bump)."""
    sim = Simulator(engine=engine)

    def early():
        yield sim.timeout(1.0)

    sim.process(early())
    sim.run(until=5.0)
    assert sim.now == 5.0

    order = []

    def late(tag):
        yield sim.timeout(0.0)
        order.append((tag, sim.now))
        yield sim.timeout(0.25)
        order.append((tag, sim.now))

    sim.process(late("a"))
    sim.process(late("b"))
    sim.run()
    assert order == [("a", 5.0), ("b", 5.0), ("a", 5.25), ("b", 5.25)]


@pytest.mark.parametrize("engine", ENGINES)
def test_far_future_and_same_tick_interleave(engine):
    """Events far outside the calendar's bucket span (the overflow
    bucket) still interleave correctly with dense near-term ticks."""
    sim = Simulator(engine=engine)
    seen = []

    def body(delay, tag):
        yield sim.timeout(delay)
        seen.append((sim.now, tag))

    for i, delay in enumerate((1e15, 0.0, 1e15, 3.0, 0.0, 1e300)):
        sim.process(body(delay, i))
    sim.run()
    assert seen == [(0.0, 1), (0.0, 4), (3.0, 3),
                    (1e15, 0), (1e15, 2), (1e300, 5)]
    assert sim.now == 1e300


BAD_DELAYS = (float("nan"), float("inf"), float("-inf"), -1.0, -1e-12)


@pytest.mark.parametrize("bad", BAD_DELAYS)
def test_bad_delays_rejected_identically(bad):
    """NaN/inf/negative delays raise ValueError on every entry point of
    both engines — with the same message, and without corrupting the
    simulator (it stays runnable and empty)."""
    messages = {}
    for engine in ENGINES:
        sim = Simulator(engine=engine)
        seen = []
        for make in (lambda: sim.timeout(bad),
                     lambda: Timeout(sim, bad),
                     lambda: sim._schedule(sim.event(), delay=bad),
                     lambda: sim.event().succeed(None, delay=bad)):
            with pytest.raises(ValueError) as excinfo:
                make()
            seen.append(str(excinfo.value))
        messages[engine] = seen
        sim.run()
        assert sim.now == 0.0
        assert sim.events_processed == 0
    assert messages["calendar"] == messages["heap"]
    if bad != bad or bad in (float("inf"), float("-inf")):
        assert all("non-finite" in msg for msg in messages["heap"])


@pytest.mark.parametrize("engine", ENGINES)
def test_timeout_recycling_does_not_leak_state(engine):
    """Back-to-back timeouts (the free-list's hottest pattern) never
    leak a value or callback from a previous incarnation."""
    sim = Simulator(engine=engine)
    got = []

    def body():
        for i in range(2000):
            value = yield sim.timeout(0.5, value=i if i % 3 else None)
            got.append(value)

    sim.process(body())
    sim.run()
    assert got == [i if i % 3 else None for i in range(2000)]
    assert sim.now == 1000.0


# ---------------------------------------------------------------------------
# Cluster-level identity.
# ---------------------------------------------------------------------------

def _radix_app():
    from repro.apps import RadixSort
    return RadixSort(keys_per_proc=128)


def test_cluster_run_bit_identical_across_engines():
    from repro.cluster import Cluster
    results = {engine: Cluster(n_nodes=4, engine=engine).run(_radix_app())
               for engine in ENGINES}
    reference = results["heap"]
    candidate = results["calendar"]
    assert candidate.runtime_us == reference.runtime_us
    assert candidate.stats.to_dict() == reference.stats.to_dict()


def test_simsan_bit_identical_across_engines():
    from repro.cluster import Cluster
    reports = {}
    for engine in ENGINES:
        result = Cluster(n_nodes=4, sanitize=True,
                         engine=engine).run(_radix_app())
        assert result.sanitizer is not None
        reports[engine] = (result.runtime_us,
                           result.sanitizer.to_dict(),
                           result.sanitizer.render())
    assert reports["calendar"] == reports["heap"]


def test_engine_is_not_part_of_the_cache_key():
    from repro.am.tuning import TuningKnobs
    from repro.harness.parallel import PointTask
    from repro.harness.runcache import RunCache
    from repro.network.loggp import LogGPParams

    base = dict(app=_radix_app(), n_nodes=4, value=1.0,
                knobs=TuningKnobs(), params=LogGPParams.berkeley_now())
    specs = [PointTask(engine=engine, **base).key_spec()
             for engine in (None, "heap", "calendar")]
    assert specs[0] == specs[1] == specs[2]
    keys = {RunCache.key_for(spec) for spec in specs}
    assert len(keys) == 1


def test_sweep_results_identical_across_engines():
    from repro.harness.sweeps import overhead_sweep
    app = _radix_app()
    sweeps = {engine: overhead_sweep(app, 4, overheads=(2.9, 52.9),
                                     engine=engine)
              for engine in ENGINES}
    table = {engine: [(p.value, p.runtime_us, p.failure)
                      for p in sweep.points]
             for engine, sweep in sweeps.items()}
    assert table["calendar"] == table["heap"]
