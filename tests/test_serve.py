"""repro.serve: the open-system serving workload tier.

The serving contract differs from the closed SPMD suite in one deep
way — requests arrive whether or not servers keep up — so the tests
pin down the pieces that make that regime deterministic and honest:

* the client tier's arrival trace is a pure function of its seed;
* the latency sketch answers quantile queries within its bucket
  resolution, and round-trips exactly;
* whole runs are bit-identical under a fixed seed (the determinism
  contract the run cache and result store depend on);
* overload ends in a *structured* ``saturated`` verdict — a completed
  run carrying metrics — never a livelock abort;
* a million simulated users is a constructor knob, not a cost: the
  aggregated-stream client tier only pays per *request*.
"""

import json

import pytest

from repro.apps import RadixSort
from repro.cluster.machine import Cluster
from repro.serve import (ARRIVAL_PROCESSES, ClientTier, FanoutServe,
                         KVServe, LatencySketch, ServingApp,
                         ServingMetrics, serving_app_from_dict)


def tiny_kv(**overrides):
    """A serving scenario small enough for dozens of test runs."""
    knobs = dict(offered_rps=200_000.0, n_users=10_000,
                 duration_us=10_000.0, max_requests=300,
                 service_us=4.0, key_space=512)
    knobs.update(overrides)
    return KVServe(**knobs)


def run_stats_json(app, n_nodes=8, seed=3):
    """Canonical JSON of a run's full stats — the bit-identity probe."""
    result = Cluster(n_nodes=n_nodes, seed=seed).run(app)
    return json.dumps(result.stats.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# 1. Client tier: seeded arrival traces.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("arrivals", ARRIVAL_PROCESSES)
def test_trace_is_a_pure_function_of_the_seed(arrivals):
    tier = ClientTier(n_users=50_000, offered_rps=300_000.0,
                      duration_us=5_000.0, max_requests=400,
                      arrivals=arrivals)
    assert tier.trace(seed=11) == tier.trace(seed=11)
    assert tier.trace(seed=11) != tier.trace(seed=12)


@pytest.mark.parametrize("arrivals", ARRIVAL_PROCESSES)
def test_trace_respects_budget_duration_and_ranges(arrivals):
    tier = ClientTier(n_users=1000, offered_rps=500_000.0,
                      duration_us=2_000.0, max_requests=250,
                      arrivals=arrivals, write_ratio=0.3, key_space=64)
    trace = tier.trace(seed=5)
    assert 0 < len(trace) <= 250
    times = [r.t_us for r in trace]
    assert times == sorted(times)
    assert all(0.0 <= t <= 2_000.0 for t in times)
    assert all(0 <= r.user < 1000 for r in trace)
    assert all(0 <= r.key < 64 for r in trace)
    writes = sum(r.write for r in trace)
    assert 0 < writes < len(trace)


def test_bursty_trace_is_burstier_than_poisson():
    """MMPP arrivals cluster: the minimum inter-arrival gap shrinks
    and the variance of gaps grows relative to Poisson at equal rate."""
    import statistics
    kwargs = dict(n_users=1000, offered_rps=200_000.0,
                  duration_us=20_000.0, max_requests=2000)
    poisson = ClientTier(arrivals="poisson", **kwargs).trace(seed=2)
    bursty = ClientTier(arrivals="bursty", **kwargs).trace(seed=2)

    def gaps(trace):
        times = [r.t_us for r in trace]
        return [b - a for a, b in zip(times, times[1:])]

    cv2 = lambda g: statistics.variance(g) / statistics.mean(g) ** 2
    assert cv2(gaps(bursty)) > cv2(gaps(poisson))


def test_client_tier_validation():
    with pytest.raises(ValueError):
        ClientTier(n_users=0, offered_rps=1000.0, duration_us=100.0,
                   max_requests=10)
    with pytest.raises(ValueError):
        ClientTier(n_users=10, offered_rps=1000.0, duration_us=100.0,
                   max_requests=10, arrivals="fractal")


# ---------------------------------------------------------------------------
# 2. Latency sketch: accuracy and round-trip.
# ---------------------------------------------------------------------------

def test_sketch_quantiles_track_exact_percentiles():
    import random
    rng = random.Random(7)
    samples = [rng.expovariate(1 / 80.0) + 5.0 for _ in range(20_000)]
    sketch = LatencySketch()
    for sample in samples:
        sketch.record(sample)
    ordered = sorted(samples)
    for q in (0.5, 0.9, 0.99, 0.999):
        exact = ordered[min(len(ordered) - 1,
                            int(q * len(ordered)))]
        approx = sketch.quantile(q)
        # Bucket resolution is 2**(1/64) ~= 1.09% per bucket edge.
        assert abs(approx - exact) / exact < 0.03, (q, approx, exact)


def test_sketch_round_trips_exactly():
    sketch = LatencySketch()
    for value in (0.1, 1.0, 17.3, 250.0, 1e6):
        sketch.record(value)
    restored = LatencySketch.from_dict(sketch.to_dict())
    assert restored.to_dict() == sketch.to_dict()
    for q in (0.001, 0.5, 0.99, 1.0):
        assert restored.quantile(q) == sketch.quantile(q)


# ---------------------------------------------------------------------------
# 3. Whole-run determinism and serialization.
# ---------------------------------------------------------------------------

def test_serving_run_is_bit_identical_under_a_seed():
    assert run_stats_json(tiny_kv()) == run_stats_json(tiny_kv())
    assert run_stats_json(tiny_kv(), seed=3) != \
        run_stats_json(tiny_kv(), seed=4)


def test_serving_metrics_round_trip_through_cluster_stats():
    result = Cluster(n_nodes=4, seed=1).run(tiny_kv(max_requests=120))
    serving = result.stats.serving
    assert isinstance(serving, ServingMetrics)
    assert serving.verdict == "ok"
    assert serving.completed == serving.arrivals
    payload = result.stats.to_dict()
    restored = type(result.stats).from_dict(payload)
    assert restored.serving.to_dict() == serving.to_dict()
    assert json.dumps(payload, sort_keys=True) == \
        json.dumps(restored.to_dict(), sort_keys=True)


def test_closed_apps_serialize_without_a_serving_section():
    """Legacy stats payloads must stay byte-identical: the serving
    field only appears when a serving app attached metrics."""
    result = Cluster(n_nodes=4, seed=7).run(RadixSort(keys_per_proc=32))
    assert result.stats.serving is None
    assert "serving" not in result.stats.to_dict()


# ---------------------------------------------------------------------------
# 4. Saturation: a structured verdict, not a failure.
# ---------------------------------------------------------------------------

def test_overload_yields_structured_saturated_verdict():
    app = tiny_kv(offered_rps=5_000_000.0, service_us=20.0,
                  max_requests=2000, max_backlog=64)
    result = Cluster(n_nodes=4, seed=2).run(app)
    serving = result.stats.serving
    assert serving.verdict == "saturated"
    assert serving.saturated_at_us is not None
    assert serving.dropped > 0
    # Conservation: every injected request is accounted for.
    assert serving.completed + serving.dropped == serving.arrivals
    # Goodput < throughput < offered under overload.
    assert serving.goodput_rps <= serving.throughput_rps


def test_underload_keeps_ok_verdict_and_slo():
    result = Cluster(n_nodes=8, seed=2).run(
        tiny_kv(offered_rps=50_000.0))
    serving = result.stats.serving
    assert serving.verdict == "ok"
    assert serving.dropped == 0
    assert serving.slo_attainment > 0.9
    assert all(0.0 <= u < 1.0 for u in serving.utilization)
    assert sum(serving.utilization) > 0.0


# ---------------------------------------------------------------------------
# 5. Scale: a million users is a knob, not a cost.
# ---------------------------------------------------------------------------

def test_million_user_scale_point_completes():
    """The acceptance-scale point: >= 1,000,000 simulated users.  The
    client tier aggregates users into seeded streams, so cost follows
    the request budget, not the population."""
    app = tiny_kv(n_users=1_000_000, offered_rps=400_000.0,
                  max_requests=600, key_space=4096)
    result = Cluster(n_nodes=8, seed=5).run(app)
    serving = result.stats.serving
    assert serving.verdict == "ok"
    assert serving.completed == 600
    users = {r.user for r in app.tier().trace(seed=5)}
    assert len(users) > 300  # draws span the population
    assert max(users) > 100_000


# ---------------------------------------------------------------------------
# 6. Load balancing, replication, fan-out.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("policy", ("random", "round-robin",
                                    "least-loaded"))
def test_load_balance_policies_complete_and_spread(policy):
    result = Cluster(n_nodes=4, seed=6).run(
        tiny_kv(load_balance=policy, max_requests=200))
    serving = result.stats.serving
    assert serving.verdict == "ok"
    assert serving.completed == 200
    assert sum(serving.assigned) == 200  # conservation across frontends


def test_least_loaded_spreads_once_queues_build():
    """Under light load least-loaded ties at zero in-flight and the
    deterministic tie-break picks rank 0; once service time outpaces
    arrivals, in-flight counts differ and work spreads."""
    serving = Cluster(n_nodes=4, seed=6).run(
        tiny_kv(load_balance="least-loaded", service_us=60.0,
                max_requests=200, max_backlog=10_000)).stats.serving
    assert serving.completed + serving.dropped == serving.arrivals
    assert min(serving.assigned) > 0  # every frontend saw work


def test_round_robin_assignment_is_even():
    result = Cluster(n_nodes=4, seed=6).run(
        tiny_kv(load_balance="round-robin", max_requests=200))
    assigned = result.stats.serving.assigned
    assert max(assigned) - min(assigned) <= 1


def test_primary_backup_writes_touch_two_shards():
    """Client-driven replication: every write is served twice (primary
    + backup), reads once — so the served/completed ratio separates
    the policies exactly."""
    base = dict(write_ratio=1.0, max_requests=150, n_nodes_seed=None)
    del base["n_nodes_seed"]
    plain = Cluster(n_nodes=4, seed=8).run(
        tiny_kv(replication="none", **base)).stats.serving
    replicated = Cluster(n_nodes=4, seed=8).run(
        tiny_kv(replication="primary-backup", **base)).stats.serving
    assert sum(plain.served_by) == plain.completed
    assert sum(replicated.served_by) == 2 * replicated.completed


def test_read_anywhere_spreads_reads_over_replicas():
    serving = Cluster(n_nodes=2, seed=9).run(
        tiny_kv(replication="primary-backup", read_anywhere=True,
                write_ratio=0.0, max_requests=200, key_space=2,
                load_balance="round-robin")).stats.serving
    # Two keys -> two primaries; read-anywhere alternates replicas, so
    # both nodes serve even with every request keyed to one shard pair.
    assert min(serving.served_by) > 0


def test_fanout_serves_k_shards_per_request():
    serving = Cluster(n_nodes=8, seed=4).run(FanoutServe(
        fanout=4, offered_rps=100_000.0, n_users=1000,
        duration_us=10_000.0, max_requests=100)).stats.serving
    assert serving.verdict == "ok"
    assert sum(serving.served_by) == 4 * serving.completed


# ---------------------------------------------------------------------------
# 7. Misc contract points.
# ---------------------------------------------------------------------------

def test_open_system_flag_separates_the_regimes():
    assert ServingApp.open_system is True
    assert RadixSort.open_system is False


def test_with_changes_rebuilds_every_constructor_knob():
    app = tiny_kv(replication="primary-backup", user_skew=1.5)
    changed = app.with_changes(offered_rps=999.0)
    assert changed.offered_rps == 999.0
    assert changed.replication == "primary-backup"
    assert changed.user_skew == 1.5
    assert changed.n_users == app.n_users


def test_serving_app_from_dict_round_trip():
    app = tiny_kv(replication="primary-backup")
    spec = {"app": "kvserve", "offered_rps": 123_000.0,
            "replication": "primary-backup"}
    built = serving_app_from_dict(spec)
    assert isinstance(built, KVServe)
    assert built.offered_rps == 123_000.0
    with pytest.raises(ValueError):
        serving_app_from_dict({"app": "nope"})
    assert app is not built
