"""Connect and Murphi: graph/state-space applications.

Connect validates in ``finalize`` against sequential union-find; here we
additionally cross-check with networkx.  Murphi validates against its
own sequential BFS; we re-derive that count independently.
"""

import networkx as nx
import pytest

from repro import Cluster
from repro.apps import Connect, Murphi
from repro.apps.murphi import TransitionSystem


@pytest.fixture(scope="module")
def cluster():
    return Cluster(n_nodes=4, seed=13)


# -- Connect ------------------------------------------------------------------

def test_connect_matches_networkx(cluster):
    app = Connect(rows_per_proc=3, cols=20, connectivity=0.35)
    result = cluster.run(app)
    labels = result.output

    graph = nx.Graph()
    graph.add_nodes_from(range(app._n_vertices))
    graph.add_edges_from(app._edges)
    expected_components = list(nx.connected_components(graph))

    by_label = {}
    for vertex, label in labels.items():
        by_label.setdefault(label, set()).add(vertex)
    measured_components = sorted(map(frozenset, by_label.values()),
                                 key=min)
    assert sorted(map(frozenset, expected_components), key=min) \
        == measured_components


def test_connect_read_dominated(cluster):
    summary = cluster.run(
        Connect(rows_per_proc=3, cols=24, connectivity=0.4)).summary()
    # Table 4: Connect is ~67% reads (find-chasing).
    assert summary.percent_reads > 40.0


def test_connect_light_communication(cluster):
    result = cluster.run(Connect(rows_per_proc=3, cols=24))
    # Communication is bounded by boundary edges, far below the sorts.
    assert result.stats.avg_messages_per_node < 500


def test_connect_fully_connected_mesh():
    cluster = Cluster(n_nodes=3, seed=2)
    app = Connect(rows_per_proc=2, cols=10, connectivity=1.0)
    result = cluster.run(app)
    assert len(set(result.output.values())) == 1


def test_connect_empty_mesh():
    cluster = Cluster(n_nodes=3, seed=2)
    app = Connect(rows_per_proc=2, cols=10, connectivity=0.0)
    result = cluster.run(app)
    assert len(set(result.output.values())) == app._n_vertices


def test_connect_single_node():
    result = Cluster(n_nodes=1, seed=8).run(
        Connect(rows_per_proc=4, cols=12))
    assert result.stats.total_messages == 0


# -- Murphi -------------------------------------------------------------------

def test_murphi_explores_exact_reachable_set(cluster):
    app = Murphi(state_space=400, branching=3)
    result = cluster.run(app)
    reference = TransitionSystem(400, 3, seed=cluster.seed)
    assert result.output["explored"] == reference.reachable_count()


def test_murphi_each_state_processed_once(cluster):
    app = Murphi(state_space=300, branching=2)
    result = cluster.run(app)
    assert result.output["explored"] <= 300


def test_murphi_finds_all_assertion_violations(cluster):
    app = Murphi(state_space=400, branching=3, violation_stride=7)
    result = cluster.run(app)
    reference = TransitionSystem(400, 3, seed=cluster.seed,
                                 violation_stride=7)
    assert set(result.output["violations"]) \
        == reference.reachable_violations()
    assert result.output["violations"], "stride-7 must hit something"


def test_murphi_correct_protocol_reports_no_violations(cluster):
    result = cluster.run(Murphi(state_space=300, branching=3))
    assert result.output["violations"] == []


def test_murphi_uses_bulk_batches(cluster):
    summary = cluster.run(
        Murphi(state_space=800, branching=3, batch_size=6)).summary()
    # Table 4: Murphi ships ~half its messages as bulk state batches.
    assert summary.percent_bulk > 20.0


def test_murphi_smaller_batches_ship_more_bulk(cluster):
    eager = cluster.run(
        Murphi(state_space=600, branching=3, batch_size=2)).summary()
    lazy = cluster.run(
        Murphi(state_space=600, branching=3,
               batch_size=10_000)).summary()
    # With an unreachable batch size, bulk only happens at the flush
    # (2+ leftovers per destination); eager batching ships more bulk.
    assert eager.percent_bulk >= lazy.percent_bulk
    assert eager.percent_bulk > 10.0


def test_murphi_single_node():
    result = Cluster(n_nodes=1, seed=6).run(
        Murphi(state_space=200, branching=3))
    reference = TransitionSystem(200, 3, seed=6)
    assert result.output["explored"] == reference.reachable_count()


def test_transition_system_is_deterministic():
    a = TransitionSystem(500, 3, seed=42)
    b = TransitionSystem(500, 3, seed=42)
    for state in range(0, 500, 37):
        assert a.successors(state) == b.successors(state)
    assert a.reachable_count() == b.reachable_count()


def test_transition_system_owner_partition():
    system = TransitionSystem(500, 3, seed=1)
    owners = {system.owner(s, 4) for s in range(500)}
    assert owners <= set(range(4))
    assert len(owners) == 4  # all ranks own something
