"""Campaign manager, result store, and crash-safety regressions.

The campaign layer's contract is that no completed point is ever lost:
a SIGKILLed worker, an interrupted campaign, or a mid-sweep crash must
leave every finished point durable (store row and/or cache entry), and
the rerun must recompute exactly the points that never completed —
producing artifacts byte-identical to an uninterrupted run.
"""

import os
import signal
import sqlite3
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.am.tuning import TuningKnobs
from repro.apps import RadixSort
from repro.cluster.machine import Cluster
from repro.coll.tuner import CollConfig
from repro.harness import (CampaignInterrupted, CampaignSpec, ResultStore,
                           RunCache, ensemble_from_store, overhead_sweep,
                           render_campaign, run_campaign, sweep_from_store)
from repro.harness import campaign as campaign_mod
from repro.harness import parallel as parallel_mod
from repro.harness.parallel import execute_point
from repro.harness.runcache import run_key_spec
from repro.harness.store import STORE_SCHEMA_VERSION
from repro.network.faults import DelaySpike, FaultPlan, SlowdownWindow
from repro.network.loggp import LogGPParams


def tiny_radix():
    return RadixSort(keys_per_proc=32)


def sweep_fingerprint(sweep):
    """Everything determinism guarantees: runtimes, events, failures."""
    return [(p.value,
             p.runtime_us,
             p.result.events_processed if p.completed else None,
             p.failure is not None)
            for p in sweep.points]


def base_spec():
    return run_key_spec(tiny_radix(), 4, LogGPParams.berkeley_now(),
                        TuningKnobs(), 0)


# ---------------------------------------------------------------------------
# Crashing execute_point stand-ins.  Module-level so fork workers can
# unpickle them by qualified name; configured through module globals,
# which the forked children inherit.
# ---------------------------------------------------------------------------

#: Sweep value whose worker SIGKILLs itself.  Last in every grid below,
#: and the sleep lets the other workers finish and the parent drain
#: their results first, so the crash point is deterministic.
_CRASH_VALUE = 42.9
_CRASH_FLAG = {"path": None}


def _kill_worker_on_marker(task):
    if task.value == _CRASH_VALUE:
        time.sleep(0.6)
        os.kill(os.getpid(), signal.SIGKILL)
    return execute_point(task)


def _kill_worker_once(task):
    """SIGKILL on the marker value only on the first encounter."""
    if task.value == _CRASH_VALUE and not os.path.exists(
            _CRASH_FLAG["path"]):
        open(_CRASH_FLAG["path"], "w").close()
        time.sleep(0.6)
        os.kill(os.getpid(), signal.SIGKILL)
    return execute_point(task)


# ---------------------------------------------------------------------------
# Satellite 1 regression: a worker crash must not discard the points
# that already finished (the old engine cached only after the batch).
# ---------------------------------------------------------------------------

def test_worker_sigkill_keeps_completed_points(tmp_path, monkeypatch):
    monkeypatch.setattr(parallel_mod, "execute_point",
                        _kill_worker_on_marker)
    cache = RunCache(tmp_path)
    grid = (2.9, 22.9, _CRASH_VALUE)
    with pytest.raises(BrokenProcessPool):
        overhead_sweep(tiny_radix(), n_nodes=4, overheads=grid,
                       cache=cache, jobs=2)
    # The two points that completed before the crash are already on
    # disk — this is the regression: they used to be lost.
    assert len(cache) == 2

    monkeypatch.undo()  # rerun with the real execute_point
    rerun = overhead_sweep(tiny_radix(), n_nodes=4, overheads=grid,
                           cache=cache, jobs=2)
    assert cache.hits == 2  # only the crashed point was resimulated
    assert cache.misses == 4  # 3 cold probes + the crashed point's rerun
    serial = overhead_sweep(tiny_radix(), n_nodes=4, overheads=grid)
    assert sweep_fingerprint(rerun) == sweep_fingerprint(serial)


def test_serial_sweep_caches_per_point(tmp_path, monkeypatch):
    cache = RunCache(tmp_path)
    seen = []
    real_put = RunCache.put

    def tracking_put(self, spec, result=None, failure=None):
        real_put(self, spec, result=result, failure=failure)
        seen.append(len(self))

    monkeypatch.setattr(RunCache, "put", tracking_put)
    overhead_sweep(tiny_radix(), n_nodes=4, overheads=(2.9, 22.9),
                   cache=cache)
    # Each point landed the moment it finished, not as a final batch.
    assert seen == [1, 2]


# ---------------------------------------------------------------------------
# Satellite 3: address-bearing reprs must fail fast, not silently miss.
# ---------------------------------------------------------------------------

def test_key_for_rejects_address_bearing_repr():
    spec = base_spec()
    spec["app"]["kwargs"]["rng"] = object()  # default repr: <... at 0x...>
    with pytest.raises(ValueError,
                       match=r"spec\.app\.kwargs\.rng .* address"):
        RunCache.key_for(spec)


def test_key_for_allows_address_like_strings():
    # String *content* that merely looks like an address is JSON-native
    # and perfectly stable — only repr fallbacks are rejected.
    spec = base_spec()
    spec["app"]["kwargs"]["note"] = "<thing object at 0xdeadbeef>"
    assert RunCache.key_for(spec) == RunCache.key_for(spec)


def test_campaign_points_fail_fast_on_unstable_app_kwargs(monkeypatch):
    import repro.harness.runcache as runcache_mod
    real = runcache_mod.app_fingerprint

    def poisoned(app):
        fingerprint = real(app)
        fingerprint["kwargs"]["handle"] = object()
        return fingerprint

    monkeypatch.setattr(runcache_mod, "app_fingerprint", poisoned)
    spec = CampaignSpec(name="bad", apps=("Radix",), node_counts=(4,),
                        dials=(("overhead", (2.9,)),), scale=0.05)
    # The error surfaces at expansion time, before any simulation.
    with pytest.raises(ValueError, match="address-bearing repr"):
        spec.points()


# ---------------------------------------------------------------------------
# Satellite 2: orphaned temp files.
# ---------------------------------------------------------------------------

def test_clear_removes_orphaned_tmps(tmp_path):
    cache = RunCache(tmp_path)
    overhead_sweep(tiny_radix(), n_nodes=2, overheads=(2.9,), cache=cache)
    (tmp_path / "orphan123.tmp").write_text("half-written")
    assert cache.clear() == 2  # one entry + one orphan
    assert len(cache) == 0
    assert not (tmp_path / "orphan123.tmp").exists()


def test_sweep_stale_tmps_is_age_gated(tmp_path):
    cache = RunCache(tmp_path)
    fresh = tmp_path / "fresh.tmp"
    fresh.write_text("worker mid-put")
    stale = tmp_path / "stale.tmp"
    stale.write_text("orphan")
    old = time.time() - 7200
    os.utime(stale, (old, old))
    assert cache.sweep_stale_tmps(older_than_s=3600.0) == 1
    assert fresh.exists()  # too young to be an orphan
    assert not stale.exists()


# ---------------------------------------------------------------------------
# Result store.
# ---------------------------------------------------------------------------

def test_store_roundtrip_result_and_failure_rows(tmp_path):
    result = Cluster(n_nodes=4, seed=0).run(tiny_radix())
    spec = base_spec()
    key = RunCache.key_for(spec)
    with ResultStore(tmp_path / "s.sqlite") as store:
        store.put("c", key, app="Radix", n_nodes=4, parameter="overhead",
                  value=2.9, seed=0, spec=spec, result=result)
        store.put("c", "k-na", app="Radix", n_nodes=4,
                  parameter="overhead", value=102.9, seed=0, spec=spec,
                  failure="livelock: budget")
        restored, failure = store.get("c", key)
        assert failure is None
        assert restored.runtime_us == result.runtime_us
        assert restored.events_processed == result.events_processed
        assert (restored.stats.matrix == result.stats.matrix).all()
        assert store.get("c", "k-na") == (None, "livelock: budget")
        assert store.get("c", "absent") is None
        assert store.hits == 2 and store.misses == 1
        assert store.keys("c") == {key, "k-na"}
        assert store.count("c") == 2 and len(store) == 2
        assert store.count_failures("c") == 1
        assert store.campaigns() == ["c"]
        points = list(store.points("c"))
        assert [p.completed for p in points] == [True, False]
        with pytest.raises(ValueError, match="exactly one"):
            store.put("c", "k-bad", app="Radix", n_nodes=4,
                      parameter="overhead", value=0.0, seed=0, spec=spec)


def test_store_put_is_idempotent_per_key(tmp_path):
    spec = base_spec()
    with ResultStore(tmp_path / "s.sqlite") as store:
        for _ in range(2):  # INSERT OR REPLACE: reruns never duplicate
            store.put("c", "k", app="Radix", n_nodes=4,
                      parameter="overhead", value=2.9, seed=0, spec=spec,
                      failure="budget exceeded: x")
        assert store.count("c") == 1


def test_store_schema_version_mismatch_refuses(tmp_path):
    path = tmp_path / "s.sqlite"
    ResultStore(path).close()
    db = sqlite3.connect(path)
    with db:
        db.execute("UPDATE meta SET value='999' WHERE key='schema'")
    db.close()
    with pytest.raises(ValueError, match="schema v999"):
        ResultStore(path)
    assert STORE_SCHEMA_VERSION != 999


# ---------------------------------------------------------------------------
# Campaign spec: validation and JSON round trip.
# ---------------------------------------------------------------------------

def test_campaign_spec_validation():
    good = dict(apps=("Radix",), node_counts=(4,),
                dials=(("overhead", (2.9,)),))
    with pytest.raises(ValueError, match="non-empty name"):
        CampaignSpec(name="", **good)
    with pytest.raises(ValueError, match="unknown machine"):
        CampaignSpec(name="c", machine="cray-t3d", **good)
    with pytest.raises(ValueError, match="unknown dial"):
        CampaignSpec(name="c", apps=("Radix",), node_counts=(4,),
                     dials=(("frobnication", (1.0,)),))
    with pytest.raises(ValueError, match="no values"):
        CampaignSpec(name="c", apps=("Radix",), node_counts=(4,),
                     dials=(("overhead", ()),))
    spec = CampaignSpec(name="c", **good)
    assert spec.values_for("overhead") == (2.9,)
    with pytest.raises(KeyError, match="no dial"):
        spec.values_for("gap")


def test_campaign_spec_json_round_trip_with_faults_and_coll():
    spec = CampaignSpec(
        name="rt", apps=("Radix", "Connect"), node_counts=(4, 8),
        dials=(("overhead", (2.9, 22.9)), ("drop_rate", (0.0, 0.01))),
        seeds=(0, 7), scale=0.25, machine="meiko-cs2",
        run_limit_us=1e6, livelock_limit=5000, window=4,
        faults=FaultPlan(
            drop_rate=0.001, drop_kinds=("bulk",),
            spikes=(DelaySpike(node=1, start_us=10.0, duration_us=5.0),),
            slowdowns=(SlowdownWindow(node=2, start_us=0.0,
                                      duration_us=50.0, factor=2.0),),
            salt=3),
        coll=CollConfig(policy="model",
                        choices=(("broadcast", "chain"),)),
        engine="calendar")
    round_tripped = CampaignSpec.from_json(spec.to_json())
    assert round_tripped == spec
    # And the round trip preserves point identity, not just equality.
    assert ([p.key for p in round_tripped.points()]
            == [p.key for p in spec.points()])


def test_campaign_points_order_and_keys_are_deterministic():
    spec = CampaignSpec(name="order", apps=("Radix",), node_counts=(4,),
                        dials=(("overhead", (2.9, 22.9)),), scale=0.05)
    points = spec.points()
    assert [(p.parameter, p.value) for p in points] == \
        [("overhead", 2.9), ("overhead", 22.9)]
    assert points[0].key != points[1].key
    assert points[0].key == RunCache.key_for(points[0].spec)


# ---------------------------------------------------------------------------
# Tentpole: resumable runner.
# ---------------------------------------------------------------------------

def small_campaign(name, values=(2.9, 12.9, 22.9, 32.9)):
    return CampaignSpec(name=name, apps=("Radix",), node_counts=(4,),
                        dials=(("overhead", values),), scale=0.05)


def test_interrupted_campaign_resumes_byte_identical(tmp_path):
    """Satellite 4: the crash-resume differential."""
    spec = small_campaign("diff")
    with ResultStore(tmp_path / "full.sqlite") as full:
        uninterrupted = run_campaign(spec, full, jobs=1)
        assert uninterrupted.computed_points == 4
        reference = render_campaign([spec], full)

    with ResultStore(tmp_path / "crash.sqlite") as store:
        with pytest.raises(CampaignInterrupted):
            run_campaign(spec, store, jobs=1, interrupt_after=2)
        assert store.count("diff") == 2  # interrupted half-way, durable
        # Query-side generation refuses to render the partial series.
        with pytest.raises(KeyError, match="missing 2/4"):
            sweep_from_store(store, spec, "Radix", 4, "overhead")

        resumed = run_campaign(spec, store, jobs=1)
        assert resumed.resumed_points == 2  # skipped via the store...
        assert resumed.computed_points == 2  # ...recomputed only the rest
        assert render_campaign([spec], store) == reference


def test_campaign_resumes_across_store_sessions(tmp_path):
    spec = small_campaign("sessions", values=(2.9, 22.9))
    with ResultStore(tmp_path / "s.sqlite") as store:
        run_campaign(spec, store, jobs=1)
    with ResultStore(tmp_path / "s.sqlite") as store:  # fresh connection
        report = run_campaign(spec, store, jobs=1)
        assert report.resumed_points == 2
        assert report.computed_points == 0


def test_campaign_cache_fills_store_without_simulating(tmp_path):
    spec = small_campaign("cachefill", values=(2.9, 22.9))
    cache = RunCache(tmp_path / "cache")
    with ResultStore(tmp_path / "a.sqlite") as store:
        run_campaign(spec, store, cache=cache, jobs=1)
    # A second store over the same grid is filled purely from the cache.
    with ResultStore(tmp_path / "b.sqlite") as store:
        report = run_campaign(spec, store, cache=cache, jobs=1)
        assert report.cache_hits == 2
        assert report.computed_points == 0
        assert store.count("cachefill") == 2


def test_run_campaign_requeues_after_worker_crash(tmp_path, monkeypatch):
    _CRASH_FLAG["path"] = str(tmp_path / "crashed.flag")
    monkeypatch.setattr(campaign_mod, "execute_point", _kill_worker_once)
    spec = small_campaign("requeue", values=(2.9, 22.9, _CRASH_VALUE))
    with ResultStore(tmp_path / "s.sqlite") as store:
        report = run_campaign(spec, store, jobs=2)
        # The crash broke the first pool; the lost task(s) were re-queued
        # on a fresh one and the campaign still finished in one call.
        assert report.requeued_points >= 1
        assert report.computed_points == 3
        assert store.count("requeue") == 3
        assert os.path.exists(_CRASH_FLAG["path"])


def test_campaign_report_bench_payload(tmp_path):
    spec = small_campaign("bench", values=(2.9, 22.9))
    with ResultStore(tmp_path / "s.sqlite") as store:
        report = run_campaign(spec, store, jobs=1)
    payload = report.to_dict()
    assert payload["schema"] == "repro-campaign-bench-v1"
    assert payload["campaign"] == "bench"
    assert payload["total_points"] == 2
    assert payload["computed_points"] == 2
    assert payload["resumed_points"] == 0
    assert payload["points_per_sec"] >= 0.0
    assert "bench" in report.describe()


# ---------------------------------------------------------------------------
# Query side: store-generated sweeps match engine-generated ones.
# ---------------------------------------------------------------------------

def test_ensemble_from_store_mean_and_ci(tmp_path):
    spec = CampaignSpec(name="ens", apps=("Radix",), node_counts=(4,),
                        dials=(("overhead", (2.9, 12.9)),),
                        scale=0.05, seeds=(0, 7))
    with ResultStore(tmp_path / "s.sqlite") as store:
        run_campaign(spec, store, jobs=1)
        ens = ensemble_from_store(store, spec, "Radix", 4, "overhead")
        # Cross-check against the per-seed series the ensemble is built
        # from: mean of each seed's own slowdown, CI from their spread.
        per_seed = [sweep_from_store(store, spec, "Radix", 4, "overhead",
                                     seed=s).slowdowns()
                    for s in spec.seeds]
        means = ens.mean_slowdowns()
        widths = ens.ci_halfwidths()
        for i, value in enumerate(ens.values):
            samples = [s[i] for s in per_seed]
            assert means[i] == pytest.approx(sum(samples) / len(samples))
        assert means[0] == pytest.approx(1.0)  # baseline of each seed
        assert widths[0] == pytest.approx(0.0)
        assert all(wd >= 0.0 for wd in widths)
        rows = ens.rows()
        assert [r["completed_seeds"] for r in rows] == [2, 2]
        # The rendered campaign carries the ensemble table only for
        # multi-seed specs.
        text = render_campaign([spec], store)
        assert "Seed ensemble (2 seeds" in text
    single = small_campaign("one", values=(2.9, 12.9))
    with ResultStore(tmp_path / "one.sqlite") as store:
        run_campaign(single, store, jobs=1)
        assert "Seed ensemble" not in render_campaign([single], store)


def test_sweep_from_store_matches_direct_sweep(tmp_path):
    values = (2.9, 12.9, 22.9)
    spec = small_campaign("match", values=values)
    with ResultStore(tmp_path / "s.sqlite") as store:
        run_campaign(spec, store, jobs=1)
        from_store = sweep_from_store(store, spec, "Radix", 4, "overhead")
    app = spec.points()[0].task.app
    direct = overhead_sweep(app, n_nodes=4, overheads=values)
    assert sweep_fingerprint(from_store) == sweep_fingerprint(direct)
    assert from_store.slowdowns() == direct.slowdowns()
