"""Unit tests for stats, Table 4 summaries, and Figure 4 rendering."""

import numpy as np
import pytest

from repro.instruments import (ClusterStats, balance_matrix,
                               render_balance, summarize)
from repro.network.packet import Packet, PacketKind


def make_stats(n_nodes=4):
    stats = ClusterStats(n_nodes)
    stats.start_measurement(0.0)
    return stats


def short(src, dst, is_read=False):
    return Packet(kind=PacketKind.REQUEST, src=src, dst=dst,
                  handler="h", is_read=is_read)


def bulk(src, dst, nbytes):
    return Packet(kind=PacketKind.BULK_FRAGMENT, src=src, dst=dst,
                  is_bulk=True, size_bytes=min(nbytes, 4096),
                  message_bytes=nbytes, fragment=(0, 1))


def test_on_send_updates_matrix_and_totals():
    stats = make_stats()
    stats.on_send(0, short(0, 1))
    stats.on_send(0, short(0, 2))
    stats.on_send(1, short(1, 0))
    assert stats.total_messages == 3
    assert stats.matrix[0, 1] == 1 and stats.matrix[0, 2] == 1
    assert stats.messages_sent[0] == 2


def test_bulk_and_read_categories():
    stats = make_stats()
    stats.on_send(0, bulk(0, 1, 10_000))
    stats.on_send(0, short(0, 1, is_read=True))
    assert stats.bulk_messages_sent[0] == 1
    assert stats.bulk_bytes_sent[0] == 10_000
    assert stats.read_messages_sent[0] == 1


def test_disabled_stats_ignore_traffic():
    stats = ClusterStats(2)
    stats.on_send(0, short(0, 1))  # before start_measurement
    assert stats.total_messages == 0
    stats.start_measurement(0.0)
    stats.on_send(0, short(0, 1))
    stats.stop_measurement(10.0)
    stats.on_send(0, short(0, 1))  # after stop
    assert stats.total_messages == 1


def test_runtime_requires_completion():
    stats = ClusterStats(2)
    with pytest.raises(RuntimeError):
        _ = stats.runtime_us
    stats.start_measurement(5.0)
    stats.stop_measurement(25.0)
    assert stats.runtime_us == 20.0


def test_communication_balance_metric():
    stats = make_stats(2)
    for _ in range(9):
        stats.on_send(0, short(0, 1))
    stats.on_send(1, short(1, 0))
    assert stats.communication_balance == pytest.approx(9 / 5)


def test_summary_matches_hand_computation():
    stats = make_stats(2)
    for _ in range(10):
        stats.on_send(0, short(0, 1))
        stats.on_send(1, short(1, 0, is_read=True))
    stats.on_barrier(0)
    stats.on_barrier(1)
    stats.stop_measurement(10_000.0)  # 10 ms
    summary = summarize("demo", stats)
    assert summary.avg_messages_per_proc == 10
    assert summary.messages_per_proc_per_ms == pytest.approx(1.0)
    assert summary.message_interval_us == pytest.approx(1000.0)
    assert summary.barrier_interval_ms == pytest.approx(10.0)
    assert summary.percent_reads == pytest.approx(50.0)
    assert summary.percent_bulk == 0.0


def test_summary_bandwidths():
    stats = make_stats(2)
    stats.on_send(0, bulk(0, 1, 1024 * 200))
    stats.stop_measurement(1e6)  # 1 s
    summary = summarize("bw", stats)
    # 200 KB from node 0 over 1 s, averaged over 2 nodes -> 100 KB/s.
    assert summary.bulk_kb_per_s == pytest.approx(100.0)


def test_balance_matrix_normalised():
    stats = make_stats(3)
    for _ in range(4):
        stats.on_send(0, short(0, 1))
    stats.on_send(1, short(1, 2))
    matrix = balance_matrix(stats)
    assert matrix.max() == 1.0
    assert matrix[0, 1] == 1.0
    assert matrix[1, 2] == pytest.approx(0.25)


def test_balance_matrix_empty_run():
    stats = make_stats(2)
    matrix = balance_matrix(stats)
    assert np.all(matrix == 0)


def test_render_balance_shape():
    stats = make_stats(4)
    stats.on_send(2, short(2, 3))
    text = render_balance(stats, title="demo")
    lines = text.splitlines()
    assert "demo" in lines[0]
    assert len(lines) == 2 + 4  # title + header + one row per sender


def test_per_node_rows():
    stats = make_stats(2)
    stats.on_send(0, short(0, 1))
    rows = stats.per_node_rows()
    assert rows[0]["messages_sent"] == 1
    assert rows[1]["messages_sent"] == 0
