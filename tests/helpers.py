"""Shared test scaffolding: a bare two-or-more-node AM fabric.

Builds simulator + wire + AM layers directly (below the Cluster/Proc
level) so tests can assert exact LogGP timings of individual messages.
"""

from __future__ import annotations

from typing import List, Optional

from repro.am.layer import AmLayer, DEFAULT_WINDOW, HandlerTable
from repro.am.tuning import TuningKnobs
from repro.network.loggp import LogGPParams
from repro.network.wire import Wire
from repro.sim import Simulator


class _BareHost:
    """Minimal stand-in for Proc as `am.host` (handlers may use state)."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.state = {}


class Fabric:
    """N AM endpoints on one wire, for layer-level tests."""

    def __init__(self, n_nodes: int = 2,
                 params: Optional[LogGPParams] = None,
                 knobs: Optional[TuningKnobs] = None,
                 window: int = DEFAULT_WINDOW,
                 table: Optional[HandlerTable] = None) -> None:
        self.params = params or LogGPParams.berkeley_now()
        self.knobs = knobs or TuningKnobs()
        self.sim = Simulator()
        self.wire = Wire(self.sim, self.params.latency)
        self.table = table or HandlerTable()
        self.ams: List[AmLayer] = []
        for node_id in range(n_nodes):
            am = AmLayer(self.sim, node_id, self.params, self.knobs,
                         self.wire, self.table, window=window)
            am.host = _BareHost(node_id)
            self.ams.append(am)

    def run(self, *generators, until=None):
        """Run one process per generator; returns their results in order."""
        procs = [self.sim.process(g) for g in generators]
        done = self.sim.all_of(procs)
        self.sim.run(until=until, stop_event=done)
        return [p.value for p in procs]
