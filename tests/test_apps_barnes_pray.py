"""Barnes and P-Ray: the software-caching, lock-using applications."""

import numpy as np
import pytest

from repro import Cluster, TuningKnobs
from repro.apps import Barnes, PRay
from repro.apps.barnes import (MAX_DEPTH, cell_center, cell_half_width,
                               cell_owner, octant_of, plan_split)
from repro.gas.runtime import LivelockError


@pytest.fixture(scope="module")
def cluster():
    return Cluster(n_nodes=4, seed=21)


# -- Barnes geometry helpers -----------------------------------------------------

def test_root_cell_geometry():
    assert np.allclose(cell_center(()), [0.5, 0.5, 0.5])
    assert cell_half_width(()) == 0.5


def test_child_cell_geometry():
    # Octant 0 is the low corner on every axis.
    assert np.allclose(cell_center((0,)), [0.25, 0.25, 0.25])
    # Octant 7 is the high corner.
    assert np.allclose(cell_center((7,)), [0.75, 0.75, 0.75])
    assert cell_half_width((0,)) == 0.25


def test_octant_roundtrip():
    # A point placed in each child octant must map back to that octant.
    for octant in range(8):
        position = cell_center((octant,))
        assert octant_of(position, ()) == octant


def test_cell_owner_deterministic_and_spread():
    owners = {cell_owner((a, b), 8)
              for a in range(8) for b in range(8)}
    assert owners <= set(range(8))
    assert len(owners) > 3  # hashes spread over nodes
    assert cell_owner((1, 2, 3), 8) == cell_owner((1, 2, 3), 8)


def test_plan_split_separating_bodies():
    body_a = (0, np.array([0.1, 0.1, 0.1]), 1.0)
    body_b = (1, np.array([0.9, 0.9, 0.9]), 1.0)
    records = plan_split((), body_a, body_b)
    # Bodies separate immediately: two leaves plus the root internal.
    kinds = [record["type"] for _key, record in records]
    assert kinds == ["leaf", "leaf", "internal"]
    root_record = records[-1][1]
    assert records[-1][0] == ()
    assert root_record["children"] == {0, 7}


def test_plan_split_deep_chain():
    # Two very close bodies force a chain of internal cells.
    body_a = (0, np.array([0.100, 0.1, 0.1]), 1.0)
    body_b = (1, np.array([0.101, 0.1, 0.1]), 1.0)
    records = plan_split((), body_a, body_b)
    internals = [key for key, rec in records if rec["type"] == "internal"]
    assert len(internals) >= 2
    # Parent flip comes last, so descenders never see half a subtree.
    assert records[-1][0] == ()
    # Every internal knows its children.
    for key, record in records:
        if record["type"] == "internal":
            assert record["children"]


def test_plan_split_identical_positions_hits_max_depth():
    position = np.array([0.3, 0.3, 0.3])
    records = plan_split((), (0, position, 1.0), (1, position.copy(), 2.0))
    leaf_keys = [key for key, rec in records if rec["type"] == "leaf"]
    assert any(len(key) == MAX_DEPTH for key in leaf_keys)


# -- Barnes end-to-end ----------------------------------------------------------

def test_barnes_matches_sequential_reference(cluster):
    result = cluster.run(Barnes(bodies_per_proc=5, steps=1))
    assert result.output.shape == (20, 3)


def test_barnes_multi_step_rebuilds_tree(cluster):
    result = cluster.run(Barnes(bodies_per_proc=4, steps=2))
    assert result.output.shape == (16, 3)


def test_barnes_accuracy_vs_direct_sum(cluster):
    app = Barnes(bodies_per_proc=5, theta=0.3, steps=1)
    result = cluster.run(app)
    from repro.apps.barnes import _pairwise
    positions = app._positions
    masses = app._masses
    direct = np.zeros_like(positions)
    for i in range(len(masses)):
        for j in range(len(masses)):
            if i != j:
                direct[i] += _pairwise(positions[i], positions[j],
                                       masses[j])
    # θ=0.3 is a tight opening criterion: BH should be close to direct.
    err = np.linalg.norm(result.output - direct, axis=1)
    scale = np.linalg.norm(direct, axis=1)
    assert np.median(err / (scale + 1e-12)) < 0.05


def test_barnes_uses_locks_and_reads(cluster):
    result = cluster.run(Barnes(bodies_per_proc=5, steps=1))
    summary = result.summary()
    assert summary.percent_reads > 5.0
    assert summary.percent_bulk > 5.0  # cached cell fetches are bulk


def test_barnes_livelock_guard_fires_on_contention():
    # The paper reports Barnes "does not complete" past ~7-13 us of
    # added overhead (lock retry storms).  Our failed-lock budget is the
    # operational stand-in for that DNF condition: with a tiny budget, a
    # contended build must trip the guard.
    cluster = Cluster(n_nodes=8, seed=21,
                      knobs=TuningKnobs.added_overhead(25.0),
                      livelock_limit=20)
    with pytest.raises(LivelockError):
        cluster.run(Barnes(bodies_per_proc=16, steps=1))


def test_barnes_lock_contention_is_recorded():
    cluster = Cluster(n_nodes=8, seed=21)
    result = cluster.run(Barnes(bodies_per_proc=8, steps=1))
    # Concurrent inserts into a fresh tree always collide at the top.
    assert result.stats.failed_lock_attempts.sum() > 0


# -- P-Ray ----------------------------------------------------------------------

def test_pray_image_matches_reference(cluster):
    result = cluster.run(PRay(pixels_per_proc=16, n_objects=64))
    assert result.output.shape == (64,)


def test_pray_read_and_bulk_dominated(cluster):
    summary = cluster.run(
        PRay(pixels_per_proc=24, n_objects=64)).summary()
    # Table 4: P-Ray ~96% reads, ~48% bulk (bulk replies to short
    # read requests).
    assert summary.percent_reads > 70.0
    assert summary.percent_bulk > 25.0


def test_pray_cache_reduces_fetches(cluster):
    big_cache = cluster.run(PRay(pixels_per_proc=24, n_objects=64,
                                 cache_objects=64))
    tiny_cache = cluster.run(PRay(pixels_per_proc=24, n_objects=64,
                                  cache_objects=2))
    assert tiny_cache.stats.total_messages \
        > big_cache.stats.total_messages


def test_pray_hot_objects_create_imbalance():
    cluster = Cluster(n_nodes=8, seed=21)
    result = cluster.run(PRay(pixels_per_proc=32, n_objects=128,
                              cache_objects=4, zipf_s=2.0))
    # Hot low-id objects live on low ranks: their owners receive more
    # traffic than average (Figure 4f's hot spots).
    column_load = result.stats.matrix.sum(axis=0)
    assert column_load.max() > 1.3 * column_load.mean()


def test_pray_single_node_no_messages():
    result = Cluster(n_nodes=1, seed=2).run(
        PRay(pixels_per_proc=16, n_objects=32))
    assert result.stats.total_messages == 0
