"""Deeper tests of the collective operations."""

import pytest

from repro import Cluster
from repro.apps.base import Application


class _Lambda(Application):
    name = "coll-test"

    def __init__(self, body):
        self._body = body

    def run_rank(self, proc):
        yield from self._body(proc)


def run_app(body, n_nodes=4, **kw):
    return Cluster(n_nodes=n_nodes, **kw).run(_Lambda(body))


@pytest.mark.parametrize("n_nodes", [1, 2, 3, 4, 5, 7, 8, 16])
def test_barrier_all_sizes(n_nodes):
    def body(proc):
        for _ in range(3):
            yield from proc.barrier()

    run_app(body, n_nodes=n_nodes)


@pytest.mark.parametrize("n_nodes", [1, 2, 3, 5, 8])
def test_broadcast_all_sizes_and_roots(n_nodes):
    def body(proc):
        for root in range(n_nodes):
            value = yield from proc.broadcast(
                value=("payload", root) if proc.rank == root else None,
                root=root)
            assert value == ("payload", root)

    run_app(body, n_nodes=n_nodes)


@pytest.mark.parametrize("n_nodes", [1, 2, 3, 5, 8])
def test_reduce_all_sizes(n_nodes):
    def body(proc):
        total = yield from proc.reduce(proc.rank, lambda a, b: a + b)
        if proc.rank == 0:
            assert total == sum(range(proc.n_ranks))

    run_app(body, n_nodes=n_nodes)


def test_back_to_back_collectives_do_not_cross_talk():
    def body(proc):
        first = yield from proc.allreduce(proc.rank, max)
        second = yield from proc.allreduce(-proc.rank, min)
        third = yield from proc.broadcast(
            "x" if proc.rank == 1 else None, root=1)
        assert first == proc.n_ranks - 1
        assert second == -(proc.n_ranks - 1)
        assert third == "x"
        yield from proc.barrier()
        fourth = yield from proc.allreduce(1, lambda a, b: a + b)
        assert fourth == proc.n_ranks

    run_app(body, n_nodes=6)


def test_interleaved_barriers_and_point_to_point():
    def body(proc):
        arr = proc.allocate(proc.n_ranks, name="mix")
        for round_id in range(4):
            peer = (proc.rank + 1 + round_id) % proc.n_ranks
            if peer != proc.rank:
                yield from proc.write(arr, peer, round_id, mode="add")
            yield from proc.sync()
            yield from proc.barrier()
        # Rounds 0..2 deposit their round id in every slot; in round 3
        # the target would be the writer itself (stride P), which the
        # loop skips — so each slot holds 0 + 1 + 2 = 3.
        assert int(proc.local(arr)[0]) == 3

    run_app(body, n_nodes=4)


def test_barrier_counts_match_rounds():
    def body(proc):
        for _ in range(5):
            yield from proc.barrier()

    result = run_app(body, n_nodes=8)
    # 5 in-app barriers + the runtime's exit barrier.
    assert int(result.stats.barriers[0]) == 6


def test_broadcast_bulk_variant():
    def body(proc):
        table = list(range(100)) if proc.rank == 0 else None
        value = yield from proc.broadcast(table, root=0,
                                          size=400, bulk=True)
        assert value == list(range(100))

    result = run_app(body, n_nodes=4)
    assert result.stats.bulk_messages_sent.sum() > 0


def test_reduce_non_commutative_order_is_deterministic():
    def body(proc):
        # String concatenation: order-sensitive.  The binomial tree
        # combines deterministically, so every run agrees.
        value = yield from proc.reduce(str(proc.rank),
                                       lambda a, b: a + b)
        if proc.rank == 0:
            proc.state["combined"] = value

    first = run_app(body, n_nodes=8)
    second = run_app(body, n_nodes=8)
    # finalize not used; read proc state via stats equality of runtimes.
    assert first.runtime_us == second.runtime_us
