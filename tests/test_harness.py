"""Tests for the sweep harness, suite scaling, and reporting."""

import pytest

from repro.apps import RadixSort
from repro.harness import suite_for
from repro.harness.report import ascii_plot, render_table
from repro.harness.sweeps import (gap_sweep, latency_sweep,
                                  overhead_sweep, run_sweep)
from repro.am.tuning import TuningKnobs


def test_suite_for_scales_inputs_to_fixed_total():
    suite_32 = suite_for(32)
    suite_16 = suite_for(16)
    radix_32 = next(a for a in suite_32 if a.name == "Radix")
    radix_16 = next(a for a in suite_16 if a.name == "Radix")
    # Same total keys: per-proc doubles when nodes halve.
    assert 16 * radix_16.keys_per_proc == 32 * radix_32.keys_per_proc


def test_suite_for_filters_by_name():
    suite = suite_for(8, names=["Radix", "Sample"])
    assert {app.name for app in suite} == {"Radix", "Sample"}


def test_suite_for_unknown_name_errors():
    with pytest.raises(KeyError):
        suite_for(8, names=["NoSuchApp"])


def test_overhead_sweep_produces_monotone_slowdown():
    sweep = overhead_sweep(RadixSort(keys_per_proc=48), n_nodes=4,
                           overheads=(2.9, 22.9, 102.9))
    slowdowns = sweep.slowdowns()
    assert slowdowns[0] == pytest.approx(1.0)
    assert slowdowns[1] > 1.5
    assert slowdowns[2] > slowdowns[1]


def test_overhead_sweep_roughly_linear():
    sweep = overhead_sweep(RadixSort(keys_per_proc=48), n_nodes=4,
                           overheads=(2.9, 27.9, 52.9, 102.9))
    series = sweep.series()
    # Slope between consecutive segments should be stable (linear
    # dependence, Section 5.1).
    (x0, y0), (x1, y1), (x2, y2), (x3, y3) = series
    slope_a = (y1 - y0) / (x1 - x0)
    slope_b = (y3 - y2) / (x3 - x2)
    assert slope_b == pytest.approx(slope_a, rel=0.30)


def test_gap_sweep_baseline_first():
    sweep = gap_sweep(RadixSort(keys_per_proc=32), n_nodes=4,
                      gaps=(5.8, 55.0))
    assert sweep.slowdowns()[0] == pytest.approx(1.0)
    assert sweep.slowdowns()[1] > 2.0


def test_latency_sweep_write_app_tolerant():
    # Coarse scan batches keep the (latency-sensitive, serialized)
    # histogram phase out of the picture: the distribution phase's
    # pipelined writes largely ignore latency (Figure 7).
    sweep = latency_sweep(RadixSort(keys_per_proc=64, scan_batch=256),
                          n_nodes=4, latencies=(5.0, 105.0))
    assert sweep.slowdowns()[1] < 3.0


def test_run_sweep_custom_knob_function():
    sweep = run_sweep(RadixSort(keys_per_proc=32), 4, "overhead",
                      (0.0, 20.0),
                      lambda v: TuningKnobs.added_overhead(v))
    assert sweep.parameter == "overhead"
    assert len(sweep.points) == 2
    assert sweep.points[1].knobs.delta_o == 20.0


def test_sweep_rows_are_renderable():
    sweep = overhead_sweep(RadixSort(keys_per_proc=32), n_nodes=2,
                           overheads=(2.9, 52.9))
    text = render_table(sweep.as_rows(), title="test")
    assert "Radix" in text and "slowdown" in text


def test_render_table_empty():
    assert "no rows" in render_table([], title="empty")


def test_render_table_alignment():
    text = render_table([{"a": 1, "b": "xx"}, {"a": 300, "b": "y"}])
    lines = text.splitlines()
    assert len({len(line) for line in lines}) == 1  # rectangular


def test_ascii_plot_contains_series_glyphs():
    plot = ascii_plot({"one": [(0, 1), (10, 5)],
                       "two": [(0, 1), (10, 2)]},
                      title="demo", x_label="x", y_label="y")
    assert "o" in plot and "x" in plot
    assert "one" in plot and "two" in plot
    assert "demo" in plot


def test_ascii_plot_no_data():
    assert "no data" in ascii_plot({}, title="void")
