"""Unit tests for the analytical sensitivity models (Section 5)."""

import pytest

from repro.models import (BurstGapModel, OverheadModel, ReadLatencyModel,
                          UniformGapModel)


# -- overhead model ------------------------------------------------------------

def test_overhead_model_linear_in_delta_o():
    model = OverheadModel(base_runtime_us=1000.0,
                          max_messages_per_proc=50)
    assert model.predict_runtime(0.0) == 1000.0
    assert model.predict_runtime(10.0) == 1000.0 + 2 * 50 * 10.0
    assert model.sensitivity_us_per_us() == 100.0


def test_overhead_model_slowdown_normalised():
    model = OverheadModel(base_runtime_us=500.0,
                          max_messages_per_proc=25)
    assert model.predict_slowdown(0.0) == 1.0
    assert model.predict_slowdown(10.0) == pytest.approx(2.0)


def test_overhead_model_validates_inputs():
    with pytest.raises(ValueError):
        OverheadModel(base_runtime_us=0.0, max_messages_per_proc=1)
    with pytest.raises(ValueError):
        OverheadModel(base_runtime_us=1.0, max_messages_per_proc=-1)
    model = OverheadModel(base_runtime_us=1.0, max_messages_per_proc=1)
    with pytest.raises(ValueError):
        model.predict_runtime(-1.0)


def test_paper_table5_sample_row():
    # Table 5, Sample at o=52.9 (delta = 50): measured 142.7 s,
    # predicted 142.7 s from base 13.2 s — the model's flagship fit.
    # m for Sample is 1,294,967 (Table 4 max messages).
    model = OverheadModel(base_runtime_us=13.2e6,
                          max_messages_per_proc=1_294_967)
    predicted_s = model.predict_runtime(50.0) / 1e6
    assert predicted_s == pytest.approx(142.7, rel=0.01)


# -- gap models ------------------------------------------------------------------

def test_burst_gap_model_charges_every_message():
    model = BurstGapModel(base_runtime_us=1000.0,
                          max_messages_per_proc=100)
    assert model.predict_runtime(0.0) == 1000.0
    assert model.predict_runtime(5.0) == 1500.0


def test_paper_table6_radix_row():
    # Table 6, Radix at g=105 (delta = 99.2): base 7.8 s, m=1,279,018,
    # predicted 135.7 s.
    model = BurstGapModel(base_runtime_us=7.8e6,
                          max_messages_per_proc=1_279_018)
    predicted_s = model.predict_runtime(105.0 - 5.8) / 1e6
    assert predicted_s == pytest.approx(135.7, rel=0.01)


def test_uniform_gap_model_has_threshold():
    model = UniformGapModel(base_runtime_us=1000.0,
                            max_messages_per_proc=100,
                            message_interval_us=50.0,
                            base_gap_us=5.8)
    # Total gap below the average interval: no effect.
    assert model.predict_runtime(20.0) == 1000.0
    # Above it: every message stalls (g_total - I).
    expected = 1000.0 + 100 * ((5.8 + 60.0) - 50.0)
    assert model.predict_runtime(60.0) == pytest.approx(expected)


def test_uniform_model_predicts_less_than_burst_below_threshold():
    burst = BurstGapModel(base_runtime_us=1000.0,
                          max_messages_per_proc=100)
    uniform = UniformGapModel(base_runtime_us=1000.0,
                              max_messages_per_proc=100,
                              message_interval_us=200.0,
                              base_gap_us=5.8)
    for delta in (10.0, 50.0, 100.0):
        assert uniform.predict_runtime(delta) \
            <= burst.predict_runtime(delta)


# -- latency model ----------------------------------------------------------------

def test_latency_model_charges_round_trips():
    model = ReadLatencyModel(base_runtime_us=1000.0,
                             reads_per_proc=10)
    assert model.predict_runtime(0.0) == 1000.0
    assert model.predict_runtime(25.0) == 1000.0 + 2 * 10 * 25.0


def test_latency_model_from_table4_columns():
    model = ReadLatencyModel.from_message_counts(
        base_runtime_us=1000.0, max_messages_per_proc=200,
        percent_reads=50.0)
    # 200 messages, half read-related -> 50 read operations.
    assert model.reads_per_proc == pytest.approx(50.0)


def test_em3d_read_latency_model_tracks_paper_scale():
    # EM3D(read): base 114 s, 8,316,063 max messages, 97.07% reads.
    # At L=105 (delta = 100) the paper measures 993.1 s.
    model = ReadLatencyModel.from_message_counts(
        base_runtime_us=114e6, max_messages_per_proc=8_316_063,
        percent_reads=97.07)
    predicted_s = model.predict_runtime(100.0) / 1e6
    assert predicted_s == pytest.approx(921.0, rel=0.02)
    # Within ~10% of the measured 993 s: "the only application for
    # which a simple model of latency is accurate".
    assert abs(predicted_s - 993.1) / 993.1 < 0.10
