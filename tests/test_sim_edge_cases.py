"""Remaining edge cases of the simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Simulator
from repro.sim.events import EventError


def test_run_until_exact_event_time_processes_event():
    sim = Simulator()
    fired = []

    def body():
        yield sim.timeout(10.0)
        fired.append(sim.now)

    sim.process(body())
    sim.run(until=10.0)
    assert fired == [10.0]


def test_anyof_failure_propagates_to_waiter():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def body():
        try:
            yield sim.any_of([gate, sim.timeout(100.0)])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(body())
    gate.fail(RuntimeError("anyof-child-failed"))
    sim.run()
    assert caught == ["anyof-child-failed"]


def test_allof_failure_propagates_to_waiter():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def body():
        try:
            yield sim.all_of([sim.timeout(1.0), gate])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(body())
    gate.fail(RuntimeError("allof-child-failed"))
    sim.run()
    assert caught == ["allof-child-failed"]


def test_waiting_on_failing_child_process():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("child died")

    def parent():
        try:
            yield sim.process(child())
        except ValueError:
            return "handled"
        return "missed"

    proc = sim.process(parent())
    assert sim.run(stop_event=proc) == "handled"


def test_event_fail_requires_exception_instance():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_event_ok_before_trigger_is_error():
    sim = Simulator()
    with pytest.raises(EventError):
        _ = sim.event().ok


def test_late_callback_fires_from_event_loop():
    sim = Simulator()
    fired = []

    def body():
        done = sim.timeout(1.0)
        yield done
        # `done` is processed now; a late subscription must still fire.
        done.add_callback(lambda e: fired.append(sim.now))
        yield sim.timeout(1.0)

    sim.process(body())
    sim.run()
    assert fired == [1.0]


def test_store_capacity_validation():
    from repro.sim import Store
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_peek_on_empty_heap_is_infinity():
    sim = Simulator()
    assert sim.peek() == float("inf")


def test_anyof_with_already_processed_child():
    sim = Simulator()

    def body():
        first = sim.timeout(1.0, value="first")
        yield first  # processed now
        result = yield sim.any_of([first, sim.timeout(50.0)])
        return (sim.now, list(result.values()))

    proc = sim.process(body())
    # The already-processed child satisfies the condition immediately
    # (on the next engine step, at the same simulated time).
    assert sim.run(stop_event=proc) == (1.0, ["first"])
