"""Tests for the serialization-corrected model and CSV export."""

import csv

import numpy as np
import pytest

from repro.harness.export import (write_matrix_csv, write_rows_csv,
                                  write_series_csv)
from repro.models.serialization import (SerializedOverheadModel,
                                        estimate_serial_messages)


# -- serialization model -------------------------------------------------------

def test_serialized_model_adds_serial_term():
    simple_like = SerializedOverheadModel(
        base_runtime_us=1000.0, max_messages_per_proc=10,
        serial_messages=0.0)
    corrected = SerializedOverheadModel(
        base_runtime_us=1000.0, max_messages_per_proc=10,
        serial_messages=5.0)
    assert simple_like.predict_runtime(10.0) == 1200.0
    assert corrected.predict_runtime(10.0) == 1300.0
    assert corrected.simple_model().predict_runtime(10.0) == 1200.0


def test_estimate_serial_messages_roundtrip():
    model = SerializedOverheadModel(base_runtime_us=2000.0,
                                    max_messages_per_proc=40,
                                    serial_messages=25.0)
    measured = model.predict_runtime(50.0)
    estimate = estimate_serial_messages(
        base_runtime_us=2000.0, max_messages_per_proc=40,
        measured_runtime_us=measured, delta_o_us=50.0)
    assert estimate == pytest.approx(25.0)


def test_estimate_clamps_at_zero():
    # Measurement below the simple model: no serial work inferred.
    estimate = estimate_serial_messages(
        base_runtime_us=1000.0, max_messages_per_proc=10,
        measured_runtime_us=1050.0, delta_o_us=10.0)
    assert estimate == 0.0


def test_estimate_requires_positive_delta():
    with pytest.raises(ValueError):
        estimate_serial_messages(1000.0, 10, 1100.0, 0.0)


def test_parallel_efficiency_erodes_with_overhead():
    # 16 "nodes": more messages per proc, shorter serial chain.
    p16 = SerializedOverheadModel(base_runtime_us=1000.0,
                                  max_messages_per_proc=100,
                                  serial_messages=40.0)
    # 32 "nodes": half the per-proc messages, double the serial chain.
    p32 = SerializedOverheadModel(base_runtime_us=600.0,
                                  max_messages_per_proc=50,
                                  serial_messages=80.0)
    ratio_low = p32.parallel_efficiency_ratio(1.0, p16)
    ratio_high = p32.parallel_efficiency_ratio(100.0, p16)
    # As overhead grows, the 32-node config loses ground: the paper's
    # "parallel efficiency will decrease as overhead increases".
    assert ratio_high > ratio_low


def test_serialized_model_against_real_radix_sweep():
    """n_serial backed out of a Radix run must predict a *different*
    high-overhead point better than the simple model."""
    from repro import Cluster, TuningKnobs
    from repro.apps import RadixSort
    app = RadixSort(keys_per_proc=128)
    base = Cluster(n_nodes=8, seed=5)
    baseline = base.run(app)
    mid = base.with_knobs(TuningKnobs.added_overhead(50.0)).run(app)
    top = base.with_knobs(TuningKnobs.added_overhead(100.0)).run(app)

    n_serial = estimate_serial_messages(
        baseline.runtime_us, baseline.stats.max_messages_per_node,
        mid.runtime_us, 50.0)
    model = SerializedOverheadModel(
        base_runtime_us=baseline.runtime_us,
        max_messages_per_proc=baseline.stats.max_messages_per_node,
        serial_messages=n_serial)
    corrected_err = abs(model.predict_runtime(100.0) - top.runtime_us)
    simple_err = abs(model.simple_model().predict_runtime(100.0)
                     - top.runtime_us)
    assert corrected_err < simple_err


# -- CSV export -----------------------------------------------------------------

def test_write_rows_csv_roundtrip(tmp_path):
    rows = [{"app": "Radix", "slowdown": 2.5},
            {"app": "Sample", "slowdown": 1.5, "note": "x"}]
    path = write_rows_csv(rows, tmp_path / "rows.csv")
    with open(path) as handle:
        read = list(csv.DictReader(handle))
    assert read[0]["app"] == "Radix"
    assert read[1]["note"] == "x"
    assert read[0]["note"] == ""


def test_write_rows_csv_empty(tmp_path):
    path = write_rows_csv([], tmp_path / "empty.csv")
    assert path.read_text() == ""


def test_write_matrix_csv(tmp_path):
    matrix = np.array([[0.0, 1.0], [0.5, 0.0]])
    path = write_matrix_csv(matrix, tmp_path / "m.csv")
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 3
    assert lines[1].startswith("0,")
    with pytest.raises(ValueError):
        write_matrix_csv(np.zeros(3), tmp_path / "bad.csv")


def test_write_series_csv(tmp_path):
    series = {"Radix": [(2.9, 1.0), (102.9, 30.0)]}
    path = write_series_csv(series, tmp_path / "s.csv",
                            x_label="overhead")
    with open(path) as handle:
        rows = list(csv.DictReader(handle))
    assert rows[0]["series"] == "Radix"
    assert float(rows[1]["slowdown"]) == 30.0
