"""Correctness and characteristics of the three sorts (Radix, Sample,
Radb) across cluster sizes and inputs.

Every run validates its own output inside ``finalize`` (a wrong sort
raises), so these tests primarily pin down *communication* properties:
message counts, balance, bulk usage.
"""

import numpy as np
import pytest

from repro import Cluster
from repro.apps import RadixSort, RadixBulk, SampleSort


@pytest.fixture(scope="module")
def cluster():
    return Cluster(n_nodes=4, seed=7)


# -- Radix ------------------------------------------------------------------

def test_radix_sorts_correctly(cluster):
    result = cluster.run(RadixSort(keys_per_proc=64))
    assert result.output is not None
    assert len(result.output) == 4 * 64
    assert np.all(np.diff(result.output) >= 0)


def test_radix_single_node_degenerate():
    result = Cluster(n_nodes=1, seed=3).run(RadixSort(keys_per_proc=32))
    assert np.all(np.diff(result.output) >= 0)
    # One node: the sort is purely local.
    assert result.stats.total_messages == 0


def test_radix_two_nodes():
    result = Cluster(n_nodes=2, seed=11).run(RadixSort(keys_per_proc=48))
    assert np.all(np.diff(result.output) >= 0)


def test_radix_odd_node_count():
    result = Cluster(n_nodes=5, seed=2).run(RadixSort(keys_per_proc=40))
    assert len(result.output) == 5 * 40


def test_radix_multiple_passes_needed():
    # 16-bit keys with an 8-bit radix: exactly two passes, like the
    # paper's two iterations.
    app = RadixSort(keys_per_proc=32, radix_bits=8, key_bits=16)
    assert app.n_passes == 2
    Cluster(n_nodes=3, seed=1).run(app)


def test_radix_communication_is_balanced(cluster):
    result = cluster.run(RadixSort(keys_per_proc=64))
    # Paper: Radix communication is frequent and balanced (Figure 4a).
    assert result.stats.communication_balance < 1.35


def test_radix_message_count_scales_with_keys(cluster):
    # Coarse scan batches isolate the distribution phase, whose message
    # count scales ~linearly with keys.
    small = cluster.run(RadixSort(keys_per_proc=32, scan_batch=64))
    large = cluster.run(RadixSort(keys_per_proc=128, scan_batch=64))
    ratio = (large.stats.total_messages / small.stats.total_messages)
    assert 2.0 < ratio < 4.5


def test_radix_mostly_short_messages(cluster):
    result = cluster.run(RadixSort(keys_per_proc=64))
    summary = result.summary()
    assert summary.percent_bulk < 1.0  # Table 4: Radix 0.01% bulk
    assert summary.percent_reads < 1.0  # write-based


def test_radix_rejects_bad_parameters():
    with pytest.raises(ValueError):
        RadixSort(keys_per_proc=0)
    with pytest.raises(ValueError):
        RadixSort(radix_bits=0)
    with pytest.raises(ValueError):
        RadixSort(radix_bits=8, key_bits=4)


# -- Sample -----------------------------------------------------------------

def test_sample_sorts_correctly(cluster):
    result = cluster.run(SampleSort(keys_per_proc=64))
    merged = result.output["sorted"]
    assert np.all(np.diff(merged) >= 0)
    assert len(merged) == 4 * 64


def test_sample_buckets_unbalanced(cluster):
    # The skewed key distribution plus sampled splitters should leave
    # visibly different bucket sizes (Figure 4d's vertical bars).
    result = cluster.run(SampleSort(keys_per_proc=128))
    sizes = result.output["bucket_sizes"]
    assert max(sizes) > min(sizes)


def test_sample_write_based_no_bulk(cluster):
    summary = cluster.run(SampleSort(keys_per_proc=64)).summary()
    assert summary.percent_bulk < 1.0
    assert summary.percent_reads < 1.0


def test_sample_single_node():
    result = Cluster(n_nodes=1, seed=5).run(SampleSort(keys_per_proc=32))
    assert np.all(np.diff(result.output["sorted"]) >= 0)


# -- Radb -------------------------------------------------------------------

def test_radb_sorts_correctly(cluster):
    result = cluster.run(RadixBulk(keys_per_proc=64))
    assert np.all(np.diff(result.output) >= 0)


def test_radb_uses_bulk_messages(cluster):
    summary = cluster.run(RadixBulk(keys_per_proc=64)).summary()
    # Table 4: Radb moves its data via bulk messages; at our scaled-down
    # input the histogram's short messages weigh more than at the
    # paper's 16M keys, but the bulk share must still be visible.
    assert summary.percent_bulk > 5.0


def test_radb_sends_far_fewer_messages_than_radix(cluster):
    radix = cluster.run(RadixSort(keys_per_proc=64))
    radb = cluster.run(RadixBulk(keys_per_proc=64))
    # The whole point of the restructuring: per-destination bulk
    # messages instead of per-key short messages.
    assert radb.stats.total_messages < radix.stats.total_messages / 2


def test_radb_and_radix_agree(cluster):
    radix = cluster.run(RadixSort(keys_per_proc=64))
    radb = cluster.run(RadixBulk(keys_per_proc=64))
    assert np.array_equal(radix.output, radb.output)
