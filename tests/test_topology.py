"""Tests for the detailed Myrinet switched fabric."""

import numpy as np
import pytest

from repro import Cluster
from repro.apps import RadixSort
from repro.network.packet import Packet, PacketKind
from repro.network.topology import (HOSTS_PER_LEAF, N_LEAF_SWITCHES,
                                    N_SPINE_SWITCHES, SwitchedFabric)
from repro.sim import Simulator


class _StubNic:
    def __init__(self):
        self.received = []

    def receive_from_wire(self, packet):
        self.received.append((packet, packet.injected_at))


def make_fabric(hop_latency=1.0, **kwargs):
    sim = Simulator()
    fabric = SwitchedFabric(sim, hop_latency=hop_latency, **kwargs)
    return sim, fabric


# -- geometry ---------------------------------------------------------------

def test_ten_switches_as_in_the_paper():
    _sim, fabric = make_fabric()
    assert fabric.n_switches == 10
    assert N_LEAF_SWITCHES * HOSTS_PER_LEAF == 32


def test_leaf_assignment():
    assert SwitchedFabric.leaf_of(0) == 0
    assert SwitchedFabric.leaf_of(3) == 0
    assert SwitchedFabric.leaf_of(4) == 1
    assert SwitchedFabric.leaf_of(31) == 7


def test_hop_counts():
    _sim, fabric = make_fabric()
    assert fabric.hops(0, 1) == 1      # same leaf
    assert fabric.hops(0, 4) == 3      # across leaves
    assert fabric.hops(31, 0) == 3


def test_spine_choice_is_deterministic_and_spread():
    spines = {SwitchedFabric.spine_for(a, b)
              for a in range(N_LEAF_SWITCHES)
              for b in range(N_LEAF_SWITCHES) if a != b}
    assert spines == set(range(N_SPINE_SWITCHES))
    assert SwitchedFabric.spine_for(1, 2) \
        == SwitchedFabric.spine_for(1, 2)


def test_geometry_limits():
    sim = Simulator()
    with pytest.raises(ValueError):
        SwitchedFabric(sim, n_hosts=33)
    with pytest.raises(ValueError):
        SwitchedFabric(sim, hop_latency=-1.0)
    fabric = SwitchedFabric(sim, n_hosts=8)
    with pytest.raises(ValueError):
        fabric.attach(8, _StubNic())


# -- transit ------------------------------------------------------------------

def test_same_leaf_is_one_hop_latency():
    sim, fabric = make_fabric(hop_latency=2.0)
    nic = _StubNic()
    fabric.attach(1, nic)
    fabric.carry(Packet(kind=PacketKind.REQUEST, src=0, dst=1))
    sim.run()
    assert sim.now == pytest.approx(2.0)
    assert fabric.hop_histogram == {1: 1}


def test_cross_leaf_is_three_hops_plus_links():
    sim, fabric = make_fabric(hop_latency=2.0, link_mb_s=160.0)
    nic = _StubNic()
    fabric.attach(5, nic)
    packet = Packet(kind=PacketKind.REQUEST, src=0, dst=5,
                    size_bytes=32)
    fabric.carry(packet)
    sim.run()
    link_time = 2 * 32 / 160.0  # two inter-switch links
    assert sim.now == pytest.approx(3 * 2.0 + link_time)
    assert fabric.hop_histogram == {3: 1}


def test_default_hop_latency_matches_flat_wire_cross_leaf():
    sim = Simulator()
    fabric = SwitchedFabric(sim)  # default 5/3 us per hop
    assert fabric.route_latency(0, 31) == pytest.approx(5.0)


def test_spine_link_contention_serialises_large_packets():
    sim, fabric = make_fabric(hop_latency=0.0, link_mb_s=1.0)
    nic = _StubNic()
    fabric.attach(4, nic)
    # Two 1000-byte packets from the same leaf share the same up link:
    # the second must wait for the first's serialisation.
    for i in range(2):
        fabric.carry(Packet(kind=PacketKind.BULK_FRAGMENT, src=0, dst=4,
                            size_bytes=1000, fragment=(0, 1)))
    sim.run()
    # Each packet takes 1000us up + 1000us down; the up link serialises:
    # second finishes ~1000us after the first.
    assert sim.now >= 3000.0


def test_fifo_per_pair_preserved():
    sim, fabric = make_fabric(hop_latency=1.0)
    nic = _StubNic()
    fabric.attach(9, nic)
    packets = [Packet(kind=PacketKind.REQUEST, src=0, dst=9, payload=i)
               for i in range(6)]
    for packet in packets:
        fabric.carry(packet)
    sim.run()
    received_order = [p.payload for p, _t in nic.received]
    assert received_order == list(range(6))


def test_expected_mean_latency_between_1_and_3_hops():
    _sim, fabric = make_fabric(hop_latency=1.0)
    mean = fabric.expected_mean_latency()
    assert 1.0 < mean < 3.0
    # Most pairs are cross-leaf, so the mean leans toward 3.
    assert mean > 2.5


# -- full stack over the switched fabric ------------------------------------------

def test_cluster_runs_apps_over_myrinet_fabric():
    cluster = Cluster(n_nodes=8, seed=4, fabric="myrinet")
    result = cluster.run(RadixSort(keys_per_proc=64))
    assert np.all(np.diff(result.output) >= 0)


def test_myrinet_and_flat_runtimes_are_close():
    app = RadixSort(keys_per_proc=64)
    flat = Cluster(n_nodes=8, seed=4, fabric="flat").run(app)
    switched = Cluster(n_nodes=8, seed=4, fabric="myrinet").run(app)
    # Same average transit latency; small divergence from route
    # asymmetry and link serialisation only.
    ratio = switched.runtime_us / flat.runtime_us
    assert 0.8 < ratio < 1.3


def test_unknown_fabric_rejected():
    with pytest.raises(ValueError):
        Cluster(n_nodes=4, fabric="tokenring")
