"""A racy twin of the sample-sort communication pattern.

Every rank puts its id into its right neighbour's slot and immediately
reads its *own* slot — with no ``sync()``/barrier between the two, so
the remote put by rank ``r-1`` races the local read by rank ``r`` on
every slot.  Exactly one deduplicated race (put vs read, one site pair)
must be reported, with one occurrence per rank.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import Application
from repro.gas.runtime import Proc


class RacyPut(Application):
    """One planted put/read race on a shared slot array."""

    name = "RacyPut"

    def run_rank(self, proc: Proc) -> Generator:
        slots = proc.allocate(proc.n_ranks, name="slots")
        right = (proc.rank + 1) % proc.n_ranks
        yield from proc.write(slots, right, proc.rank)  # planted race: put
        value = yield from proc.read(slots, proc.rank)  # planted race: read
        proc.state["observed"] = value
        # Proper closure *after* the damage is done, so the run itself
        # completes and the sanitizer report rides out on the result.
        yield from proc.sync()
        yield from proc.barrier()
