"""Planted-defect fixture applications for the simsan sanitizer tests.

Each app contains exactly one known concurrency defect:

* :class:`~tests.fixtures.sanitize.racy_put.RacyPut` — a remote ``put``
  racing a local ``read`` of the same elements (no sync between them).
* :class:`~tests.fixtures.sanitize.lock_cycle.LockCycle` — the classic
  two-lock ordering deadlock, surfacing as a livelock without simsan.
* :class:`~tests.fixtures.sanitize.unbalanced_barrier.UnbalancedBarrier`
  — one rank skips a barrier, wedging everyone else (drained heap).
"""
