"""The classic two-lock ordering deadlock, planted for simsan.

Rank 0 acquires lock A then lock B; rank 1 acquires lock B then lock A,
with a barrier ensuring both hold their first lock before requesting
the second.  Each then spins on a lock held by the other forever: the
livelock budget trips, and simsan's lock-pursuit graph shows the cycle
``rank 0 -> rank 1 -> rank 0``.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import Application
from repro.gas.runtime import Proc
from repro.gas.sync import DistributedLock

LOCK_A = DistributedLock(home_rank=0, lock_id=1)
LOCK_B = DistributedLock(home_rank=1, lock_id=2)


class LockCycle(Application):
    """Two ranks acquiring two locks in opposite orders."""

    name = "LockCycle"

    def configure(self, n_nodes: int, seed: int) -> None:
        if n_nodes != 2:
            raise ValueError(
                f"{self.name} is a two-rank fixture, got {n_nodes} nodes")

    def run_rank(self, proc: Proc) -> Generator:
        first, second = (LOCK_A, LOCK_B) if proc.rank == 0 \
            else (LOCK_B, LOCK_A)
        yield from proc.lock(first)
        # Both ranks hold their first lock before either asks for its
        # second -- the deadlock is now inevitable.
        yield from proc.barrier()
        yield from proc.lock(second)  # never granted
        yield from proc.unlock(second)
        yield from proc.unlock(first)
