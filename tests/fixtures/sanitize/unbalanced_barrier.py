"""A mismatched-collectives deadlock, planted for simsan.

Every rank except 0 enters a barrier that rank 0 skips.  The barrier
epochs desynchronise: the skipping rank's *exit* barrier satisfies the
others' planted one, after which rank 0 finishes while everyone else
waits in an exit barrier no one will ever complete.  The event heap
drains and simsan reports the stuck frontier (no wait-for cycle — the
awaited rank exited).
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import Application
from repro.gas.runtime import Proc


class UnbalancedBarrier(Application):
    """All ranks but 0 wait at a barrier rank 0 never joins."""

    name = "UnbalancedBarrier"

    def run_rank(self, proc: Proc) -> Generator:
        if proc.rank != 0:
            yield from proc.barrier()  # planted: rank 0 skips this
        yield from proc.compute(1.0)
