"""Planted defect: a registered AM handler reaches a banned blocking
primitive (``am.rpc``) through two helper calls.  simlint's
handler-purity rule only inspects the handler's own body, where every
call looks innocent."""


def _lookup_remote(am, key):
    return am.rpc(0, "cache-peer", key)


def _resolve(am, packet):
    value = yield from _lookup_remote(am, packet.payload)
    return value


def _cache_handler(am, packet):
    value = yield from _resolve(am, packet)   # BUG: blocks in handler
    yield from am.reply(packet, value)


def install(table):
    table.register("cache-get", _cache_handler)
