"""Planted defect: a generator drops a call whose callee blocks two
call edges down.  simlint's unyielded-blocking-call rule only matches
direct runtime-primitive patterns, so ``_finish_phase(proc)`` passes it
— only the interprocedural summary sees the blocking reach."""


def _flush_remote(proc):
    yield from proc.am.drain()


def _finish_phase(proc):
    yield from _flush_remote(proc)


def run_rank(proc):
    yield from proc.compute(10)
    _finish_phase(proc)   # BUG: blocking generator silently discarded
