"""Twin of handler_purity_bad.py: the handler computes locally and
answers through a reply-only helper, which is allowed at any depth."""


def _format(packet):
    return ("ok", packet.payload)


def _reply_helper(am, packet):
    yield from am.reply(packet, _format(packet))


def _cache_handler(am, packet):
    yield from _reply_helper(am, packet)


def install(table):
    table.register("cache-get", _cache_handler)
