"""Planted defect: only rank 0 reaches an allreduce, two call edges
below a rank guard.  simlint's rank-dependent-collective rule looks for
collective *names* inside the branch; ``_publish(proc, value)`` hides
the collective from it."""


def _share(proc, value):
    total = yield from proc.allreduce(value)
    return total


def _publish(proc, value):
    result = yield from _share(proc, value)
    return result


def run_rank(proc):
    value = yield from proc.compute(5)
    if proc.rank == 0:
        yield from _publish(proc, value)   # BUG: other ranks never join
    yield from proc.barrier()
