"""Twin of transitive_blocking_bad.py with the delegation restored."""


def _flush_remote(proc):
    yield from proc.am.drain()


def _finish_phase(proc):
    yield from _flush_remote(proc)


def run_rank(proc):
    yield from proc.compute(10)
    yield from _finish_phase(proc)
