"""Planted defect: a plain (non-generator) helper drops a blocking
generator it cannot drive, two call edges below the entry point.
simlint skips non-generator functions entirely, so ``_shutdown`` passes
it unseen."""


def _drain_queue(proc):
    yield from proc.am.drain()


def _shutdown(proc, log):
    log.append("shutdown")
    _drain_queue(proc)   # BUG: not a generator, cannot yield from


def run_rank(proc, log):
    yield from proc.compute(1)
    _shutdown(proc, log)
