"""Twin of rank_collective_bad.py: both branches reach the same
collective kind through *different* helpers — the balanced-both-sides
exemption must propagate across call edges."""


def _sync(proc):
    yield from proc.barrier()


def _even_side(proc):
    yield from _sync(proc)


def _odd_side(proc):
    yield from _sync(proc)


def run_rank(proc):
    yield from proc.compute(5)
    if proc.rank % 2 == 0:
        yield from _even_side(proc)
    else:
        yield from _odd_side(proc)
