"""Twin of yield_integrity_bad.py: the helper became a generator and
every edge of the chain delegates."""


def _drain_queue(proc):
    yield from proc.am.drain()


def _shutdown(proc, log):
    log.append("shutdown")
    yield from _drain_queue(proc)


def run_rank(proc, log):
    yield from proc.compute(1)
    yield from _shutdown(proc, log)
