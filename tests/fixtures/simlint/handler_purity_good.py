"""Fixture: the pure twin of ``handler_purity_bad``.

Handlers only compute, touch host state, and reply; the blocking
primitives live in ordinary SPMD code, where they are allowed.
"""


def _echo_handler(am, packet):
    yield from am.reply(packet.payload)


def _deposit_handler(am, packet):
    am.host.state["deposit"] = packet.payload
    # No reply: the layer auto-acks.


def _bulk_handler(am, packet):
    yield from am.reply_bulk(packet.payload, 4096)


class GoodHandlers:
    def register_handlers(self, table):
        table.register("echo", _echo_handler)
        table.register("deposit", _deposit_handler)
        table.register("pair", lambda am, pkt: pkt)

    def run_rank(self, proc):
        # The same primitives are fine outside handler context.
        value = yield from proc.am.rpc(0, "echo", 1)
        yield from proc.barrier()
        yield from proc.am.host.poll()
        return value
