"""Fixture in a fake ``apps/`` directory: module-level mutable state."""

RESULTS = []                                    # module-mutable (line 3)
CACHE = {}                                      # module-mutable (line 4)
ORDER = ("a", "b")                              # ok: immutable
__all__ = ["RESULTS", "CACHE", "ORDER"]         # ok: dunder
