"""Fixture: the hygiene-clean twin of ``hygiene_bad``."""


def targeted(run):
    try:
        return run()
    except (ValueError, KeyError):
        return None


def cleanup_reraise(run):
    try:
        return run()
    except BaseException:
        run.cancel()
        raise


def fresh_default(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket
