"""Fixture: Active Message handlers that block at interrupt level."""


def _forwarding_handler(am, packet):
    value = yield from am.rpc(0, "fetch", packet.payload)  # impure (line 5)
    yield from am.reply(value)


def _collective_handler(am, packet):
    yield from am.host.barrier()                          # impure (line 10)
    yield from am.reply(None)


class BadHandlers:
    def register_handlers(self, table):
        table.register("forward", _forwarding_handler)
        table.register("collect", _collective_handler)
        table.register("drainer", lambda am, pkt: am.host.poll())  # (18)
