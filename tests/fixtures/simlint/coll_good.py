"""Fixture twin: the new ``repro.coll`` entry points, used correctly."""


class GoodCollApp:
    def run_rank(self, proc):
        contributions = yield from proc.gather(proc.rank + 1, root=0)
        values = None
        if proc.rank == 0:
            values = [2 * value for value in contributions]
        mine = yield from proc.scatter(values, root=0)
        everyone = yield from proc.allgather(mine)
        routed = yield from proc.alltoall(everyone, dense=True)
        return routed

    def register_handlers(self, table):
        table.register("good_note", _note_handler)


def _note_handler(am, packet):
    am.host.state["notes"].append(packet.payload)
