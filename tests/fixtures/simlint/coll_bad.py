"""Fixture: the new ``repro.coll`` entry points, misused."""


class BadCollApp:
    def run_rank(self, proc):
        proc.gather(1, root=0)                  # unyielded (line 6)
        proc.alltoall([None])                   # unyielded (line 7)
        values = yield from proc.allgather(proc.rank)
        return values

    def lopsided(self, proc):
        if proc.rank == 0:
            got = yield from proc.gather(1, root=0)  # rank-dependent (13)
        else:
            got = None
        if proc.rank % 2:
            yield from proc.alltoall([None, None])   # rank-dependent (17)
        blocks = yield from proc.scatter(got, root=0)
        return blocks

    def register_handlers(self, table):
        table.register("bad_relay", _relay_handler)


def _relay_handler(am, packet):
    am.host.allgather(packet.payload)           # handler-purity (line 26)
