"""Fixture: every hygiene rule has a violation in here."""


def swallow_everything(run):
    try:
        return run()
    except Exception:                           # broad-except (line 7)
        return None


def swallow_bare(run):
    try:
        return run()
    except:                                     # broad-except (line 14)
        return None


def shared_default(item, bucket=[]):            # mutable-default (18)
    bucket.append(item)
    return bucket


def shared_kw_default(*, table={}):             # mutable-default (23)
    return table
