"""Fixture: every determinism rule has a violation in here."""

import os
import random
import time
from datetime import datetime

import numpy as np


def wall_clock():
    started = time.time()                       # wall-clock (line 12)
    stamp = datetime.now()                      # wall-clock (line 13)
    return started, stamp


def env_read():
    cache = os.environ["REPRO_CACHE_DIR"]       # env-read (line 18)
    debug = os.getenv("DEBUG")                  # env-read (line 19)
    return cache, debug


def unseeded():
    a = random.Random()                         # unseeded-rng (line 24)
    b = np.random.RandomState()                 # unseeded-rng (line 25)
    c = random.randrange(10)                    # unseeded-rng (line 26)
    return a, b, c


def seed_independent(rank):
    # The canonical em3d bug: varies by rank, ignores the run seed.
    rng = np.random.RandomState(rank + 17)      # seed-independent (32)
    return rng.uniform(-1, 1, 8)


def set_iteration(items):
    total = 0
    for item in set(items):                     # set-iteration (line 38)
        total += item
    pending = {1, 2, 3}
    for item in pending:                        # set-iteration (line 41)
        total += item
    return total, [x for x in {4, 5}]           # set-iteration (line 43)
