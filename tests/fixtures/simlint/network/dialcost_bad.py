"""Bad fixture: hard-coded time charges the dials cannot turn."""


def tx(self, packet):
    yield self.sim.timeout(3.0)  # untracked-dial-cost
    yield self.sim.timeout(2 * 1.5)  # untracked-dial-cost (const expr)
    yield self.sim.timeout(self.knobs.delta_g)  # OK: knob-derived


def deliver(self, event):
    event.succeed(None, delay=0.5)  # untracked-dial-cost
    event.succeed(None, delay=self.knobs.delta_L)  # OK: knob-derived
    event.succeed(None)  # OK: immediate
