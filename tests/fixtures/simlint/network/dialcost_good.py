"""Good twin: every charge flows through params/knobs (or is zero)."""


def tx(self, packet):
    pre = self.knobs.delta_occ + packet.size_bytes * self.params.Gap
    yield self.sim.timeout(pre)
    yield self.sim.timeout(max(0.0, self.params.gap - pre))
    yield self.sim.timeout(0)  # zero: the idiomatic yield point


def deliver(self, event):
    event.succeed(None, delay=self.knobs.delta_L)
    event.succeed(None, delay=0)
