"""Fixture: the contract-clean twin of ``spmd_bad``."""


class GoodApp:
    def run_rank(self, proc):
        yield from proc.compute(proc.cost.ops(4))
        value = yield from proc.read(None, 0)
        yield from proc.am.send_request(1, "x", value)
        yield from proc.barrier()

    def setup_rank(self, proc):
        reply = yield from proc.am.rpc(0, "x", None)
        return reply

    def balanced(self, proc):
        # Rank-dependent branches are fine when both sides reach the
        # same collective, or when the branch holds no collectives.
        if proc.rank == 0:
            payload = yield from proc.broadcast("root", root=0)
        else:
            payload = yield from proc.broadcast(None, root=0)
        if proc.rank > 0:
            yield from proc.am.send_request(0, "x", payload)
        return payload

    def register_handlers(self, table):
        table.register("echo", _echo_handler)
        table.register("pair", lambda am, pkt: pkt)


def _echo_handler(am, packet):
    return am, packet
