"""Fixture: every finding here is silenced by a suppression comment."""

import time


def reported_elapsed():
    return time.time()  # simlint: disable=wall-clock - UX timing only


def next_line_form():
    # simlint: disable-next-line=wall-clock
    return time.time()


def multi_line_statement():
    return max(
        time.time(),  # simlint: disable=wall-clock - spans lines
        0.0,
    )


def blanket():
    return time.time()  # simlint: disable
