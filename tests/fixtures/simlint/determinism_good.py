"""Fixture: the determinism-clean twin of ``determinism_bad``."""

import random

import numpy as np


def simulated_clock(sim):
    return sim.now


def explicit_config(cache_dir):
    return cache_dir


def seeded(seed, rank):
    a = random.Random(seed * 1_000_003 + rank)
    b = np.random.RandomState((seed + rank) % (2 ** 32))
    c = np.random.default_rng(seed=seed)
    return a, b, c


def sorted_iteration(items):
    total = 0
    for item in sorted(set(items)):
        total += item
    pending = {1, 2, 3}
    for item in sorted(pending):
        total += item
    return total
