"""Fixture: every SPMD-contract rule has a violation in here."""


class BadApp:
    def run_rank(self, proc):
        proc.compute(proc.cost.ops(4))          # unyielded (line 6)
        value = proc.read(None, 0)              # unyielded (line 7)
        yield from proc.am.send_request(1, "x", value)
        proc.barrier()                          # unyielded (line 9)

    def setup_rank(self, proc):
        # Degenerate form: no yield anywhere, still an entry point.
        proc.am.rpc(0, "x", None)               # unyielded (line 13)

    def lopsided(self, proc):
        if proc.rank == 0:
            yield from proc.barrier()           # rank-dependent (17)
        value = yield from proc.broadcast(None, root=0)
        if proc.rank % 2:
            total = yield from proc.reduce(1, max)  # rank-dependent (20)
        else:
            total = value
        return total

    def register_handlers(self, table):
        table.register("one_arg", _short_handler)      # arity (line 26)
        table.register("three", lambda am, pkt, x: x)  # arity (line 27)


def _short_handler(am):
    return am
