"""EM3D: both variants validate against the sequential reference inside
``finalize``; these tests pin the variants' distinct communication
profiles (Table 4) and their agreement with each other."""

import numpy as np
import pytest

from repro import Cluster
from repro.apps import EM3D


@pytest.fixture(scope="module")
def cluster():
    return Cluster(n_nodes=4, seed=9)


def test_write_variant_matches_reference(cluster):
    result = cluster.run(EM3D(nodes_per_proc=12, steps=3,
                              variant="write"))
    assert set(result.output) == {"e", "h"}


def test_read_variant_matches_reference(cluster):
    result = cluster.run(EM3D(nodes_per_proc=12, steps=3,
                              variant="read"))
    assert set(result.output) == {"e", "h"}


def test_variants_compute_identical_fields(cluster):
    write = cluster.run(EM3D(nodes_per_proc=12, steps=3,
                             variant="write"))
    read = cluster.run(EM3D(nodes_per_proc=12, steps=3, variant="read"))
    for kind in ("e", "h"):
        assert np.allclose(write.output[kind], read.output[kind])


def test_read_variant_is_read_dominated(cluster):
    summary = cluster.run(
        EM3D(nodes_per_proc=12, steps=2, variant="read")).summary()
    # Table 4: EM3D(read) is ~97% reads.
    assert summary.percent_reads > 80.0


def test_write_variant_has_no_reads(cluster):
    summary = cluster.run(
        EM3D(nodes_per_proc=12, steps=2, variant="write")).summary()
    assert summary.percent_reads < 1.0
    assert summary.percent_bulk < 1.0


def test_read_variant_sends_more_messages(cluster):
    # Reads pull every cross edge every step; writes push each boundary
    # value once per consumer processor — the paper's read version sends
    # nearly twice the messages of the write version.
    write = cluster.run(EM3D(nodes_per_proc=12, steps=2,
                             variant="write"))
    read = cluster.run(EM3D(nodes_per_proc=12, steps=2, variant="read"))
    assert read.stats.total_messages > write.stats.total_messages


def test_write_variant_uses_barriers_each_step(cluster):
    result = cluster.run(EM3D(nodes_per_proc=12, steps=4,
                              variant="write"))
    # Two half-steps per step, one barrier each (plus the exit barrier).
    assert result.stats.barriers[0] >= 8


def test_zero_remote_edges_runs_without_communication():
    cluster = Cluster(n_nodes=2, seed=1)
    result = cluster.run(EM3D(nodes_per_proc=8, steps=2,
                              pct_remote=0.0, variant="read"))
    # Only barrier/collective traffic remains.
    summary = result.summary()
    assert summary.percent_reads == 0.0


def test_single_node_em3d():
    result = Cluster(n_nodes=1, seed=4).run(
        EM3D(nodes_per_proc=10, steps=2, variant="write"))
    assert result.stats.total_messages == 0


def test_em3d_rejects_bad_parameters():
    with pytest.raises(ValueError):
        EM3D(variant="push")
    with pytest.raises(ValueError):
        EM3D(pct_remote=1.5)
    with pytest.raises(ValueError):
        EM3D(nodes_per_proc=0)


def test_name_reflects_variant():
    assert EM3D(variant="write").name == "EM3D(write)"
    assert EM3D(variant="read").name == "EM3D(read)"
