"""EM3D: both variants validate against the sequential reference inside
``finalize``; these tests pin the variants' distinct communication
profiles (Table 4) and their agreement with each other."""

import numpy as np
import pytest

from repro import Cluster
from repro.apps import EM3D


@pytest.fixture(scope="module")
def cluster():
    return Cluster(n_nodes=4, seed=9)


def test_write_variant_matches_reference(cluster):
    result = cluster.run(EM3D(nodes_per_proc=12, steps=3,
                              variant="write"))
    assert set(result.output) == {"e", "h"}


def test_read_variant_matches_reference(cluster):
    result = cluster.run(EM3D(nodes_per_proc=12, steps=3,
                              variant="read"))
    assert set(result.output) == {"e", "h"}


def test_variants_compute_identical_fields(cluster):
    write = cluster.run(EM3D(nodes_per_proc=12, steps=3,
                             variant="write"))
    read = cluster.run(EM3D(nodes_per_proc=12, steps=3, variant="read"))
    for kind in ("e", "h"):
        assert np.allclose(write.output[kind], read.output[kind])


def test_read_variant_is_read_dominated(cluster):
    summary = cluster.run(
        EM3D(nodes_per_proc=12, steps=2, variant="read")).summary()
    # Table 4: EM3D(read) is ~97% reads.
    assert summary.percent_reads > 80.0


def test_write_variant_has_no_reads(cluster):
    summary = cluster.run(
        EM3D(nodes_per_proc=12, steps=2, variant="write")).summary()
    assert summary.percent_reads < 1.0
    assert summary.percent_bulk < 1.0


def test_read_variant_sends_more_messages(cluster):
    # Reads pull every cross edge every step; writes push each boundary
    # value once per consumer processor — the paper's read version sends
    # nearly twice the messages of the write version.
    write = cluster.run(EM3D(nodes_per_proc=12, steps=2,
                             variant="write"))
    read = cluster.run(EM3D(nodes_per_proc=12, steps=2, variant="read"))
    assert read.stats.total_messages > write.stats.total_messages


def test_write_variant_uses_barriers_each_step(cluster):
    result = cluster.run(EM3D(nodes_per_proc=12, steps=4,
                              variant="write"))
    # Two half-steps per step, one barrier each (plus the exit barrier).
    assert result.stats.barriers[0] >= 8


def test_zero_remote_edges_runs_without_communication():
    cluster = Cluster(n_nodes=2, seed=1)
    result = cluster.run(EM3D(nodes_per_proc=8, steps=2,
                              pct_remote=0.0, variant="read"))
    # Only barrier/collective traffic remains.
    summary = result.summary()
    assert summary.percent_reads == 0.0


def test_single_node_em3d():
    result = Cluster(n_nodes=1, seed=4).run(
        EM3D(nodes_per_proc=10, steps=2, variant="write"))
    assert result.stats.total_messages == 0


def test_seed_changes_initial_values_per_rank():
    """Regression: per-rank RNGs used to be RandomState(rank + 17) —
    seed-independent, so every --seed replayed identical inputs."""
    seeded_a, seeded_b = EM3D(nodes_per_proc=12), EM3D(nodes_per_proc=12)
    seeded_a.configure(n_nodes=4, seed=9)
    seeded_b.configure(n_nodes=4, seed=10)
    for rank in range(4):
        e_a, h_a = seeded_a._initial_values(rank)
        e_b, h_b = seeded_b._initial_values(rank)
        assert not np.array_equal(e_a, e_b)
        assert not np.array_equal(h_a, h_b)
    # Ranks still get distinct streams under one seed.
    e0, _ = seeded_a._initial_values(0)
    e1, _ = seeded_a._initial_values(1)
    assert not np.array_equal(e0, e1)


def test_same_seed_runs_are_bit_identical_including_cache_keys():
    from repro.harness.runcache import RunCache, run_key_spec
    from repro.am.tuning import TuningKnobs
    from repro.network.loggp import LogGPParams

    def run(seed):
        return Cluster(n_nodes=4, seed=seed).run(
            EM3D(nodes_per_proc=12, steps=2, variant="write"))

    first, second, other = run(9), run(9), run(10)
    for kind in ("e", "h"):
        assert np.array_equal(first.output[kind], second.output[kind])
        assert not np.array_equal(first.output[kind],
                                  other.output[kind])
    assert first.runtime_us == second.runtime_us
    assert first.to_dict() == second.to_dict()

    def key(seed):
        return RunCache.key_for(run_key_spec(
            EM3D(nodes_per_proc=12, steps=2, variant="write"), 4,
            LogGPParams.berkeley_now(), TuningKnobs(), seed))

    assert key(9) == key(9)
    assert key(9) != key(10)


def test_em3d_rejects_bad_parameters():
    with pytest.raises(ValueError):
        EM3D(variant="push")
    with pytest.raises(ValueError):
        EM3D(pct_remote=1.5)
    with pytest.raises(ValueError):
        EM3D(nodes_per_proc=0)


def test_name_reflects_variant():
    assert EM3D(variant="write").name == "EM3D(write)"
    assert EM3D(variant="read").name == "EM3D(read)"
