"""simflow: the interprocedural effect & SPMD-congruence analyzer.

Covers the four checks against their planted-defect fixture twins (each
bug sits behind >= 2 call edges and must be *missed* by the
intra-procedural simlint rules), the call-graph approximations, rank
taint, the shared parse cache, SARIF output, the CLI contract, and the
repo gate: ``src/repro`` must be flow-clean with an empty committed
baseline, and the certified-clean tree is pinned to bit-identical run
stats and RunCache keys."""

import json
import time
from pathlib import Path

import pytest

from repro.analysis import Baseline, main
from repro.analysis.core import (SourceFile, analyze_file,
                                 analyze_source, clear_parse_cache,
                                 default_rules, iter_python_files,
                                 load_source, parse_cache_stats)
from repro.analysis.flow import (FLOW_RULES, analyze_program,
                                 build_program, find_handlers)

FIXTURES = Path(__file__).parent / "fixtures" / "simflow"
REPO_ROOT = Path(__file__).parent.parent
SRC = REPO_ROOT / "src" / "repro"


def flow_findings(*names):
    sources = {}
    for name in names:
        path = FIXTURES / name
        source = SourceFile(name, path.read_text(encoding="utf-8"))
        sources[source.path] = source
    return analyze_program(sources)


def program_for(text, path="m.py"):
    source = SourceFile(path, text)
    return build_program({path: source})


def by_name(index):
    return {f.qualname: f for f in index.functions}


# -- the four checks against their fixture twins ----------------------------

CASES = [
    ("transitive_blocking", "flow-transitive-blocking",
     ["run_rank", "_finish_phase", "_flush_remote"]),
    ("handler_purity", "flow-handler-purity",
     ["_cache_handler", "_resolve", "_lookup_remote"]),
    ("rank_collective", "flow-rank-collective",
     ["run_rank", "_publish", "_share"]),
    ("yield_integrity", "flow-yield-integrity",
     ["_shutdown", "_drain_queue"]),
]


@pytest.mark.parametrize("stem,rule,chain", CASES,
                         ids=[c[0] for c in CASES])
def test_bad_fixture_caught_with_full_call_chain(stem, rule, chain):
    findings = flow_findings(f"{stem}_bad.py")
    assert [f.rule for f in findings] == [rule]
    assert [frame.function for frame in findings[0].chain] == chain
    # Every frame renders traceback-style with a real line number.
    rendered = findings[0].render()
    for frame in findings[0].chain:
        assert frame.line > 0
        assert f'File "{frame.path}", line {frame.line}' in rendered


@pytest.mark.parametrize("stem", [c[0] for c in CASES])
def test_good_twin_is_clean(stem):
    assert flow_findings(f"{stem}_good.py") == []


@pytest.mark.parametrize("stem", [c[0] for c in CASES])
def test_planted_defect_is_invisible_to_simlint(stem):
    """Acceptance: each transitive defect passes every intra-procedural
    rule — only the whole-program analysis catches it."""
    assert analyze_file(FIXTURES / f"{stem}_bad.py",
                        default_rules()) == []


# -- call graph -------------------------------------------------------------

def test_effects_converge_through_a_call_cycle():
    index = program_for(
        "def a(proc):\n"
        "    yield from b(proc)\n"
        "def b(proc):\n"
        "    yield from a(proc)\n"
        "    yield from proc.compute(1)\n")
    funcs = by_name(index)
    assert "blocks" in funcs["m.a"].effects
    assert "blocks" in funcs["m.b"].effects
    # The witness chain terminates despite the cycle.
    from repro.analysis.flow import chain_for
    assert len(chain_for(funcs["m.a"], "blocks")) <= 25


def test_method_resolution_covers_hierarchy_and_overrides():
    index = program_for(
        "class Base:\n"
        "    def step(self):\n"
        "        yield from self.helper()\n"
        "    def helper(self):\n"
        "        return None\n"
        "class Impl(Base):\n"
        "    def helper(self):\n"
        "        yield from self.proc.am.rpc(0, 'x', 1)\n")
    funcs = by_name(index)
    # self.helper() from Base.step sees the Impl override (CHA).
    targets = {t.qualname
               for call in funcs["m.Base.step"].calls
               for t in call.targets}
    assert {"m.Base.helper", "m.Impl.helper"} <= targets
    assert "blocks" in funcs["m.Base.step"].effects


def test_annotated_parameter_receiver_resolves():
    index = program_for(
        "class Worker:\n"
        "    def pump(self):\n"
        "        yield from self.am.drain()\n"
        "def drive(w: 'Worker'):\n"
        "    w.pump()\n")
    funcs = by_name(index)
    call = funcs["m.drive"].calls[0]
    assert [t.qualname for t in call.targets] == ["m.Worker.pump"]
    # ...which makes drive a yield-integrity finding.
    from repro.analysis.flow import run_checks
    rules = {f.rule for f in run_checks(index)}
    assert rules == {"flow-yield-integrity"}


def test_lambda_handlers_resolve_through_local_names():
    index = program_for(
        "def install(table):\n"
        "    notify = lambda am, packet: am.reply(packet, 1)\n"
        "    table.register('x', notify)\n")
    handlers = find_handlers(index)
    assert len(handlers) == 1
    handler = next(iter(handlers))
    assert handler.name == "<lambda>"
    assert "blocks" in handler.effects     # am.reply is blocking...
    assert not any(a.startswith("banned:")
                   for a in handler.effects)  # ...but reply is allowed


def test_decorated_functions_keep_their_effects():
    index = program_for(
        "import functools\n"
        "@functools.wraps(print)\n"
        "def helper(proc):\n"
        "    yield from proc.poll()\n"
        "def run_rank(proc):\n"
        "    helper(proc)\n"
        "    yield from proc.compute(1)\n")
    from repro.analysis.flow import run_checks
    findings = run_checks(index)
    assert [f.rule for f in findings] == ["flow-transitive-blocking"]


def test_return_forwarding_counts_as_generator_like():
    index = program_for(
        "def make(proc):\n"
        "    return proc.am.rpc(0, 'x', 1)\n"
        "def run_rank(proc):\n"
        "    yield from make(proc)\n")
    funcs = by_name(index)
    assert funcs["m.make"].gen_like
    from repro.analysis.flow import run_checks
    assert run_checks(index) == []


# -- rank taint -------------------------------------------------------------

def test_param_taint_crosses_the_call_edge():
    source = SourceFile("t.py", (
        "def _maybe_report(proc, leader):\n"
        "    if leader:\n"
        "        yield from _report(proc)\n"
        "def _report(proc):\n"
        "    yield from proc.reduce(1)\n"
        "def run_rank(proc):\n"
        "    is_leader = proc.rank == 0\n"
        "    yield from _maybe_report(proc, is_leader)\n"))
    findings = analyze_program({source.path: source})
    assert [f.rule for f in findings] == ["flow-rank-collective"]
    assert "rank-tainted value" in findings[0].message


def test_local_dataflow_taint_without_rank_in_the_test():
    source = SourceFile("t.py", (
        "def run_rank(proc):\n"
        "    vr = (proc.rank - 1) % proc.n_ranks\n"
        "    half = vr // 2\n"
        "    if half == 0:\n"
        "        yield from proc.barrier()\n"))
    findings = analyze_program({source.path: source})
    assert [f.rule for f in findings] == ["flow-rank-collective"]
    # simlint cannot see this one: the test never mentions 'rank'.
    assert "tainted" in findings[0].message


def test_received_values_are_not_tainted():
    source = SourceFile("t.py", (
        "def run_rank(proc):\n"
        "    total = yield from proc.allreduce(proc.rank)\n"
        "    if total > 4:\n"
        "        yield from proc.barrier()\n"))
    assert analyze_program({source.path: source}) == []


def test_early_return_guard_balances_against_continuation():
    # Both sides reach the barrier exactly once: no finding.
    balanced = SourceFile("t.py", (
        "def run_rank(proc):\n"
        "    if proc.rank == 0:\n"
        "        yield from proc.barrier()\n"
        "        return\n"
        "    yield from proc.barrier()\n"))
    assert analyze_program({balanced.path: balanced}) == []
    # Ranks that exit early never reach the continuation collective.
    unbalanced = SourceFile("t.py", (
        "def run_rank(proc):\n"
        "    if proc.rank > 1:\n"
        "        return\n"
        "    yield from proc.barrier()\n"))
    findings = analyze_program({unbalanced.path: unbalanced})
    assert [f.rule for f in findings] == ["flow-rank-collective"]


def test_balanced_collectives_across_calls_are_exempt():
    assert flow_findings("rank_collective_good.py") == []


# -- suppressions and baseline ----------------------------------------------

def test_flow_findings_honor_inline_suppressions():
    source = SourceFile("t.py", (
        "def _helper(proc):\n"
        "    yield from proc.am.drain()\n"
        "def run_rank(proc):\n"
        "    yield from proc.compute(1)\n"
        "    _helper(proc)  # simlint: disable=flow-transitive-blocking"
        " - spawn pattern\n"))
    assert analyze_program({source.path: source}) == []


def test_cli_deep_exit_codes(tmp_path):
    bad = str(FIXTURES / "transitive_blocking_bad.py")
    good = str(FIXTURES / "transitive_blocking_good.py")
    null = str(tmp_path / "missing.json")
    args = ["--deep", "--baseline", null, "--flow-baseline", null]
    assert main(args + [good]) == 0
    assert main(args + [bad]) == 1
    # Without --deep the defect is invisible (simlint-only view).
    assert main(["--baseline", null, bad]) == 0


def test_cli_deep_write_baseline_round_trip(tmp_path, capsys):
    bad = str(FIXTURES / "rank_collective_bad.py")
    lint_baseline = tmp_path / "lint.json"
    flow_baseline = tmp_path / "flow.json"
    args = ["--deep", "--baseline", str(lint_baseline),
            "--flow-baseline", str(flow_baseline)]
    assert main(args + [bad, "--write-baseline"]) == 0
    written = Baseline.load(flow_baseline)
    assert len(written) == 1
    assert written.entries[0]["rule"] == "flow-rank-collective"
    # With the finding grandfathered the deep gate passes...
    assert main(args + [bad]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out
    # ...and without it, it still fails.
    assert main(["--deep", "--baseline", str(lint_baseline),
                 "--flow-baseline", str(tmp_path / "other.json"),
                 bad]) == 1


def test_cli_list_rules_includes_flow_checks(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in FLOW_RULES:
        assert rule_id in out


# -- SARIF ------------------------------------------------------------------

def test_sarif_output_matches_golden_fixture(monkeypatch, capsys):
    monkeypatch.chdir(FIXTURES)
    assert main(["--deep", "--format", "sarif",
                 "--baseline", "/dev/null",
                 "--flow-baseline", "/dev/null",
                 "rank_collective_bad.py"]) == 1
    produced = json.loads(capsys.readouterr().out)
    golden = json.loads(
        (FIXTURES / "expected_rank_collective.sarif.json").read_text())
    assert produced == golden


def test_sarif_clean_run_has_no_results(capsys):
    assert main(["--deep", "--format", "sarif",
                 "--baseline", "/dev/null", "--flow-baseline", "/dev/null",
                 str(FIXTURES / "rank_collective_good.py")]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == "2.1.0"
    assert report["runs"][0]["results"] == []
    rule_ids = {r["id"] for r in report["runs"][0]["tool"]["driver"]["rules"]}
    assert set(FLOW_RULES) <= rule_ids


# -- parse cache and perf smoke ---------------------------------------------

def test_parse_cache_shares_one_parse_between_lint_and_flow():
    clear_parse_cache()
    files = list(iter_python_files([SRC]))
    rules = default_rules()
    for path in files:
        analyze_file(path, rules)
    first = parse_cache_stats()
    assert first["misses"] == len(files)
    assert first["hits"] == 0
    # The deep pass re-loads every file: all hits, no re-parse.
    sources = {}
    for path in files:
        source = load_source(path)
        sources[source.path] = source
    second = parse_cache_stats()
    assert second["misses"] == first["misses"]
    assert second["hits"] >= len(files)
    analyze_program(sources)


def test_perf_smoke_full_lint_plus_flow_under_wall_clock_floor():
    clear_parse_cache()
    start = time.perf_counter()
    rules = default_rules()
    sources = {}
    findings = []
    for path in iter_python_files([SRC]):
        source = load_source(path)
        sources[source.path] = source
        findings.extend(analyze_source(source, rules))
    findings.extend(analyze_program(sources))
    elapsed = time.perf_counter() - start
    assert findings == []
    assert elapsed < 30.0, f"lint+flow took {elapsed:.1f}s"


# -- the repo gate ----------------------------------------------------------

def test_src_repro_is_flow_clean():
    """Acceptance: the whole-program analysis runs clean over the
    repo's own sources — no baseline required."""
    sources = {}
    for path in iter_python_files([SRC]):
        source = load_source(path)
        sources[source.path] = source
    assert len(sources) > 60
    assert analyze_program(sources) == []


def test_committed_flow_baseline_is_empty_for_apps():
    """Repo policy: app findings are fixed, never grandfathered — and
    the committed flow baseline is empty outright (the tree the deep
    gate certifies has no live interprocedural defects)."""
    baseline = Baseline.load(REPO_ROOT / "simflow.baseline.json")
    assert [e for e in baseline.entries
            if "apps" in Path(e["path"]).parts] == []
    assert len(baseline) == 0


def test_flow_summaries_cover_the_runtime_stack():
    """Sanity: the fixpoint sees through the real runtime layers —
    collective roots, CHA app dispatch, and blocking reach."""
    sources = {}
    for path in iter_python_files([SRC]):
        source = load_source(path)
        sources[source.path] = source
    index = build_program(sources)
    funcs = {f.qualname: f for f in index.functions}
    barrier = funcs["repro.gas.runtime.Proc.barrier"]
    assert {"coll:barrier", "blocks"} <= barrier.effects
    drive = funcs["repro.cluster.machine.Cluster._drive"]
    run_rank_targets = {
        t.qualname for call in drive.calls
        if call.chain and call.chain[-1] == "run_rank"
        for t in call.targets}
    assert "repro.apps.base.Application.run_rank" in run_rank_targets
    assert len(run_rank_targets) > 5   # every registered app, via CHA
    assert "blocks" in drive.effects


# -- bit-identity pins ------------------------------------------------------
#
# The flow-clean tree is pinned to exact simulation output: any future
# simflow-motivated restructuring of apps/, gas/ or coll/ must keep
# run stats and RunCache keys bit-identical to these constants.

_PINS = {
    "radix": {
        "runtime_us": 2069.3999999999905,
        "events": 5326,
        "key": ("4203f13c5e0b1d920207f7633b93c5ddc38574c3"
                "2c58a2db49104c8335034df5"),
    },
    "barnes": {
        "runtime_us": 4051.680000000008,
        "events": 8542,
        "key": ("82ed433447c8875bde5a657e2613cd4f43cd5b33"
                "37d43289daede4a6e35f03db"),
    },
}


def _pin_apps():
    from repro.apps import Barnes, RadixSort
    return {
        "radix": lambda: RadixSort(keys_per_proc=32),
        "barnes": lambda: Barnes(bodies_per_proc=8, steps=1),
    }


@pytest.mark.parametrize("name", sorted(_PINS))
def test_flow_certified_tree_is_bit_identical(name):
    from repro.am.tuning import TuningKnobs
    from repro.cluster.machine import Cluster
    from repro.harness import RunCache
    from repro.harness.runcache import run_key_spec
    from repro.network.loggp import LogGPParams

    make = _pin_apps()[name]
    params, knobs = LogGPParams(), TuningKnobs()
    result = Cluster(n_nodes=4, params=params, knobs=knobs,
                     seed=3).run(make())
    pin = _PINS[name]
    assert result.runtime_us == pin["runtime_us"]
    assert result.events_processed == pin["events"]
    key = RunCache.key_for(run_key_spec(make(), 4, params, knobs, seed=3))
    assert key == pin["key"]
