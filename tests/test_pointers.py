"""Tests for Split-C-style global pointers."""

import pytest

from repro import Cluster
from repro.apps.base import Application
from repro.gas.memory import GlobalArray
from repro.gas.pointers import GlobalRef


def make_array(length=12, n_ranks=4, layout="block"):
    return GlobalArray(0, length, n_ranks, layout=layout)


# -- pure pointer algebra -----------------------------------------------------

def test_bounds_checked():
    array = make_array()
    with pytest.raises(IndexError):
        GlobalRef(array, 12)
    with pytest.raises(IndexError):
        GlobalRef(array, -1)


def test_owner_and_local_index():
    array = make_array()  # block: 3 elements per rank
    ref = GlobalRef(array, 7)
    assert ref.owner == 2
    assert ref.local_index == 1
    assert ref.is_local_to(2) and not ref.is_local_to(0)


def test_arithmetic_follows_layout():
    block = GlobalRef(make_array(layout="block"), 0)
    assert (block + 1).owner == 0          # stays on rank 0
    cyclic = GlobalRef(make_array(layout="cyclic"), 0)
    assert (cyclic + 1).owner == 1         # hops to the next rank


def test_pointer_difference_and_ordering():
    array = make_array()
    a, b = GlobalRef(array, 3), GlobalRef(array, 9)
    assert b - a == 6
    assert (b - 4).index == 5
    assert a < b
    other = make_array()
    other_ref = GlobalRef(
        GlobalArray(1, 12, 4), 0)
    with pytest.raises(ValueError):
        _ = b - other_ref


def test_repr_names_owner():
    ref = GlobalRef(make_array(), 4)
    assert "rank 1" in repr(ref)


# -- dereference through the machine ---------------------------------------------

class _PointerChase(Application):
    """Each rank walks a global pointer across the whole array."""

    name = "ptr-chase"

    def run_rank(self, proc):
        array = proc.allocate(4 * proc.n_ranks, name="chain")
        local = proc.local(array)
        start = array.local_start(proc.rank)
        local[:] = [start + i for i in range(len(local))]
        yield from proc.barrier()

        ref = GlobalRef(array, 0)
        total = 0
        while True:
            value = yield from ref.read(proc)
            total += int(value)
            if ref.index + 1 >= array.length:
                break
            ref = ref + 1
        expected = sum(range(array.length))
        assert total == expected
        # Everyone finishes chasing before anyone scribbles over the
        # chain.
        yield from proc.barrier()
        # Write through a pointer too.
        mine = GlobalRef(array, (array.length - 1 - proc.rank))
        yield from mine.write(proc, -1)
        yield from proc.sync()
        yield from proc.barrier()


def test_pointer_chase_end_to_end():
    result = Cluster(n_nodes=4, seed=1).run(_PointerChase())
    # Remote dereferences really went through the network.
    assert result.stats.read_messages_sent.sum() > 0
