"""NOW-sort: disk-paced bulk communication."""

import numpy as np
import pytest

from repro import Cluster, LogGPParams, TuningKnobs
from repro.apps import NowSort


@pytest.fixture(scope="module")
def cluster():
    return Cluster(n_nodes=4, seed=31)


def test_nowsort_output_sorted(cluster):
    result = cluster.run(NowSort(records_per_proc=128))
    merged = result.output["sorted"]
    assert np.all(np.diff(merged) >= 0)
    assert len(merged) == 4 * 128


def test_nowsort_range_partition_order(cluster):
    # Keys on rank i must all be <= keys on rank i+1: range partition.
    app = NowSort(records_per_proc=128)
    result = cluster.run(app)
    received = result.output["received_per_node"]
    assert sum(received) == 4 * 128


def test_nowsort_one_way_bulk_profile(cluster):
    summary = cluster.run(NowSort(records_per_proc=256,
                                  chunk_records=32)).summary()
    # Table 4: NOW-sort's data moves as one-way bulk messages (about
    # half of all sends there) and it performs no reads.
    assert summary.percent_bulk > 40.0
    assert summary.percent_reads == 0.0


def test_nowsort_runtime_dominated_by_disk(cluster):
    app = NowSort(records_per_proc=256)
    result = cluster.run(app)
    # Two disk passes over records_per_proc * 100 bytes at 5.5 MB/s.
    bytes_per_node = 256 * 100
    single_pass_us = bytes_per_node / 5.5
    assert result.runtime_us > 1.5 * single_pass_us


def test_nowsort_insensitive_to_moderate_bandwidth_loss():
    base = Cluster(n_nodes=4, seed=31)
    # 10 MB/s is still faster than one 5.5 MB/s disk: no slowdown.
    slowed = base.with_knobs(TuningKnobs.bulk_bandwidth(
        10.0, LogGPParams.berkeley_now()))
    app = NowSort(records_per_proc=256)
    t_base = base.run(app).runtime_us
    t_slow = slowed.run(app).runtime_us
    assert t_slow / t_base < 1.15


def test_nowsort_sensitive_below_disk_bandwidth():
    base = Cluster(n_nodes=4, seed=31)
    crawl = base.with_knobs(TuningKnobs.bulk_bandwidth(
        1.0, LogGPParams.berkeley_now()))
    app = NowSort(records_per_proc=256)
    t_base = base.run(app).runtime_us
    t_crawl = crawl.run(app).runtime_us
    # 1 MB/s is far below the disk: the network finally matters.
    assert t_crawl / t_base > 1.5


def test_nowsort_single_node():
    result = Cluster(n_nodes=1, seed=3).run(
        NowSort(records_per_proc=64))
    assert np.all(np.diff(result.output["sorted"]) >= 0)
    assert result.stats.total_messages == 0


def test_nowsort_rejects_bad_parameters():
    with pytest.raises(ValueError):
        NowSort(records_per_proc=0)
    with pytest.raises(ValueError):
        NowSort(chunk_records=0)
