"""Tests for the reusable software-managed read cache."""

import pytest

from repro import Cluster
from repro.apps import PRay
from repro.apps.base import Application
from repro.gas.cache import SoftwareCache
from repro.gas.memory import GlobalArray


class _CacheApp(Application):
    name = "cache-app"

    def __init__(self, capacity, accesses):
        self.capacity = capacity
        self.accesses = accesses

    def run_rank(self, proc):
        array = proc.allocate(4 * proc.n_ranks, name="cached")
        local = proc.local(array)
        start = array.local_start(proc.rank)
        local[:] = [start + i for i in range(len(local))]
        yield from proc.barrier()
        cache = SoftwareCache(array, self.capacity)
        proc.state["cache"] = cache
        for index in self.accesses:
            value = yield from cache.read(proc, index)
            assert int(value) == index
        yield from proc.barrier()


def run_cache_app(capacity, accesses, n_nodes=2):
    cluster = Cluster(n_nodes=n_nodes, seed=1)
    app = _CacheApp(capacity, accesses)
    return cluster.run(app)


def test_invalid_capacity():
    with pytest.raises(ValueError):
        SoftwareCache(GlobalArray(0, 8, 2), 0)


def test_repeated_remote_reads_hit_after_first_miss():
    # Rank 0 reads element 7 (owned by rank 1) three times.
    result = run_cache_app(capacity=4, accesses=[7, 7, 7])
    cache0 = result.output if result.output else None
    # Stats live on the proc state; check via message counts: only one
    # remote fetch per rank despite three accesses each.
    read_requests = result.stats.read_messages_sent.sum()
    # Each rank misses once for its one remote element: request+reply
    # per miss => 2 read messages x 2 ranks... but element 7 is local
    # to rank 1, so only rank 0 fetches (and vice versa for nothing).
    assert read_requests <= 4


def test_eviction_with_tiny_capacity():
    # Alternate between two remote elements with capacity 1: every
    # access after the first pair misses.
    accesses = [4, 5, 4, 5, 4, 5]
    result = run_cache_app(capacity=1, accesses=accesses)
    assert result.stats.read_messages_sent.sum() > 4


def test_local_elements_never_cached():
    class _LocalOnly(Application):
        name = "local-only"

        def run_rank(self, proc):
            array = proc.allocate(2 * proc.n_ranks, name="l")
            yield from proc.barrier()
            cache = SoftwareCache(array, 4)
            start = array.local_start(proc.rank)
            for _ in range(5):
                yield from cache.read(proc, start)
            assert cache.local_accesses == 5
            assert cache.hits == 0 and cache.misses == 0
            assert len(cache) == 0

    Cluster(n_nodes=2, seed=1).run(_LocalOnly())


def test_invalidate_forces_refetch():
    class _Invalidating(Application):
        name = "invalidating"

        def run_rank(self, proc):
            array = proc.allocate(2 * proc.n_ranks, name="inv")
            yield from proc.barrier()
            cache = SoftwareCache(array, 4)
            remote = (array.local_start(proc.rank)
                      + 2 * proc.n_ranks // 2) % array.length
            if array.owner_of(remote)[0] == proc.rank:
                remote = (remote + 2) % array.length
            yield from cache.read(proc, remote)
            yield from cache.read(proc, remote)
            assert cache.misses == 1 and cache.hits == 1
            cache.invalidate()
            yield from cache.read(proc, remote)
            assert cache.misses == 2

    Cluster(n_nodes=2, seed=1).run(_Invalidating())


def test_stats_row_shape():
    cache = SoftwareCache(GlobalArray(0, 8, 2), 4)
    row = cache.stats_row()
    assert row["capacity"] == 4
    assert row["hit_rate"] == 0.0


def test_pray_still_correct_with_shared_cache():
    result = Cluster(n_nodes=4, seed=2).run(
        PRay(pixels_per_proc=16, n_objects=64))
    assert result.output.shape == (64,)
