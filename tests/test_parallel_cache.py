"""Parallel sweep engine, on-disk run cache, and determinism regression.

The parallel harness promises results *bit-identical* to the serial
path (same seed → same ``runtime_us`` and ``events_processed``), the
same ``N/A`` handling for livelocked / over-budget points, and that a
cache hit reproduces the original run's counters exactly.
"""

import json

import pytest

from repro.am.tuning import TuningKnobs
from repro.apps import Barnes, RadixSort
from repro.cluster.machine import Cluster
from repro.harness import RunCache, overhead_sweep, run_sweep
from repro.harness.parallel import (run_experiments_parallel,
                                    run_sweep_parallel)
from repro.harness.runcache import run_key_spec
from repro.harness.sweeps import SweepPoint, SweepResult
from repro.network.loggp import LogGPParams


def tiny_radix():
    return RadixSort(keys_per_proc=32)


def sweep_fingerprint(sweep):
    """Everything determinism guarantees: runtimes, events, failures."""
    return [(p.value,
             p.runtime_us,
             p.result.events_processed if p.completed else None,
             p.failure is not None)
            for p in sweep.points]


# ---------------------------------------------------------------------------
# Determinism regression.
# ---------------------------------------------------------------------------

def test_same_config_runs_identically_twice():
    knobs = TuningKnobs.added_overhead(10.0)
    first = Cluster(n_nodes=4, knobs=knobs, seed=3).run(tiny_radix())
    second = Cluster(n_nodes=4, knobs=knobs, seed=3).run(tiny_radix())
    assert first.runtime_us == second.runtime_us
    assert first.events_processed == second.events_processed
    assert (first.stats.matrix == second.stats.matrix).all()


def test_parallel_sweep_bit_identical_to_serial():
    serial = overhead_sweep(tiny_radix(), n_nodes=4,
                            overheads=(2.9, 22.9, 52.9), seed=7)
    parallel = overhead_sweep(tiny_radix(), n_nodes=4,
                              overheads=(2.9, 22.9, 52.9), seed=7,
                              jobs=2)
    assert sweep_fingerprint(serial) == sweep_fingerprint(parallel)


def test_run_sweep_parallel_defaults_match_serial():
    serial = run_sweep(tiny_radix(), 4, "overhead", (0.0, 20.0),
                       TuningKnobs.added_overhead)
    parallel = run_sweep_parallel(tiny_radix(), 4, "overhead",
                                  (0.0, 20.0), TuningKnobs.added_overhead)
    assert sweep_fingerprint(serial) == sweep_fingerprint(parallel)


# ---------------------------------------------------------------------------
# N/A (livelock and run-budget) points through both engines.
# ---------------------------------------------------------------------------

def test_budget_exceeded_point_is_na_serial_and_parallel():
    baseline = Cluster(n_nodes=4, seed=0).run(tiny_radix())
    limit = baseline.runtime_us * 2.0
    for jobs in (None, 2):
        sweep = overhead_sweep(tiny_radix(), n_nodes=4,
                               overheads=(2.9, 102.9),
                               run_limit_us=limit, jobs=jobs)
        assert sweep.points[0].completed
        assert not sweep.points[1].completed
        assert "budget exceeded" in sweep.points[1].failure
        assert sweep.slowdowns() == [1.0, None]
        assert sweep.as_rows()[1]["slowdown"] == "N/A"


def test_livelock_point_is_na_serial_and_parallel():
    # The baseline machine peaks at 88 failed lock attempts per rank;
    # +25 us of overhead blows far past it (the paper's Barnes DNF
    # regime), so a 150-attempt budget separates the two points.
    app = Barnes(bodies_per_proc=16, steps=1)
    for jobs in (None, 2):
        sweep = overhead_sweep(app, n_nodes=8, overheads=(2.9, 27.9),
                               seed=21, livelock_limit=150, jobs=jobs)
        assert sweep.points[0].completed
        assert not sweep.points[1].completed
        assert "livelock" in sweep.points[1].failure
        assert sweep.slowdowns() == [1.0, None]


def test_series_raises_clearly_on_failed_baseline():
    sweep = SweepResult(app_name="Radix", n_nodes=4, parameter="overhead")
    sweep.points = [SweepPoint(value=2.9, knobs=TuningKnobs(),
                               failure="livelock: budget"),
                    SweepPoint(value=12.9, knobs=TuningKnobs())]
    with pytest.raises(RuntimeError, match="baseline run did not complete"):
        sweep.series()
    with pytest.raises(RuntimeError, match="baseline run did not complete"):
        sweep.slowdowns()


def test_step_on_empty_heap_raises_clear_error():
    from repro.sim import Simulator
    with pytest.raises(RuntimeError, match="no events to process"):
        Simulator().step()


# ---------------------------------------------------------------------------
# Run cache: miss, hit, invalidation.
# ---------------------------------------------------------------------------

def test_cache_miss_then_hit_restores_counters(tmp_path):
    cache = RunCache(tmp_path)
    cold = overhead_sweep(tiny_radix(), n_nodes=4,
                          overheads=(2.9, 22.9), cache=cache)
    assert cache.misses == 2 and cache.hits == 0
    assert len(cache) == 2

    warm = overhead_sweep(tiny_radix(), n_nodes=4,
                          overheads=(2.9, 22.9), cache=cache)
    assert cache.hits == 2
    assert sweep_fingerprint(cold) == sweep_fingerprint(warm)
    # Full stats survive the JSON round-trip (Table 5/6 need them).
    assert (warm.points[0].result.stats.matrix
            == cold.points[0].result.stats.matrix).all()
    # finalize() output is deliberately not cached.
    assert warm.points[0].result.output is None


def test_cache_stores_failures_too(tmp_path):
    cache = RunCache(tmp_path)
    app = Barnes(bodies_per_proc=16, steps=1)
    kwargs = dict(n_nodes=8, overheads=(2.9, 27.9), seed=21,
                  livelock_limit=150, cache=cache)
    cold = overhead_sweep(app, **kwargs)
    warm = overhead_sweep(app, **kwargs)
    assert cache.hits == 2
    assert not warm.points[1].completed
    assert warm.points[1].failure == cold.points[1].failure


def test_cache_key_depends_on_full_configuration(tmp_path):
    params = LogGPParams.berkeley_now()
    base = dict(n_nodes=4, params=params, knobs=TuningKnobs(), seed=0)
    key = RunCache.key_for(run_key_spec(tiny_radix(), **base))
    assert key == RunCache.key_for(run_key_spec(tiny_radix(), **base))

    variations = [
        run_key_spec(tiny_radix(), **{**base, "seed": 1}),
        run_key_spec(tiny_radix(), **{**base, "n_nodes": 8}),
        run_key_spec(tiny_radix(),
                     **{**base, "knobs": TuningKnobs.added_gap(5.0)}),
        run_key_spec(RadixSort(keys_per_proc=64), **base),
        run_key_spec(tiny_radix(), **base, run_limit_us=10.0),
        run_key_spec(tiny_radix(), **base, livelock_limit=5),
    ]
    keys = {RunCache.key_for(spec) for spec in variations}
    assert len(keys) == len(variations)  # all distinct...
    assert key not in keys  # ...and none collides with the base


def test_cache_corrupt_entry_counts_as_miss(tmp_path):
    cache = RunCache(tmp_path)
    spec = run_key_spec(tiny_radix(), 4, LogGPParams.berkeley_now(),
                        TuningKnobs(), seed=0)
    result = Cluster(n_nodes=4, seed=0).run(tiny_radix())
    cache.put(spec, result=result)
    path = cache._path(cache.key_for(spec))
    path.write_text("{not json")
    assert cache.get(spec) is None
    # A fresh put repairs the entry.
    cache.put(spec, result=result)
    restored, failure = cache.get(spec)
    assert failure is None
    assert restored.runtime_us == result.runtime_us


def test_cache_format_bump_invalidates(tmp_path):
    cache = RunCache(tmp_path)
    spec = run_key_spec(tiny_radix(), 4, LogGPParams.berkeley_now(),
                        TuningKnobs(), 0)
    result = Cluster(n_nodes=4, seed=0).run(tiny_radix())
    cache.put(spec, result=result)
    path = cache._path(cache.key_for(spec))
    data = json.loads(path.read_text())
    data["spec"]["format"] = -1
    path.write_text(json.dumps(data))
    assert cache.get(spec) is None


def test_cache_clear(tmp_path):
    cache = RunCache(tmp_path)
    overhead_sweep(tiny_radix(), n_nodes=2, overheads=(2.9,), cache=cache)
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0


# ---------------------------------------------------------------------------
# Experiment-level fan-out.
# ---------------------------------------------------------------------------

def test_run_experiments_parallel_matches_serial():
    requests = [
        ("table3_baseline_runtimes",
         {"node_counts": (4,), "scale": 0.02, "names": ["Radix"]}),
        ("table3_baseline_runtimes",
         {"node_counts": (4,), "scale": 0.02, "names": ["Connect"]}),
    ]
    serial = run_experiments_parallel(requests, jobs=1)
    fanned = run_experiments_parallel(requests, jobs=2)
    assert [t.runtimes for t in serial] == [t.runtimes for t in fanned]


def test_run_experiments_parallel_rejects_unknown_name():
    with pytest.raises(KeyError, match="no_such_experiment"):
        run_experiments_parallel([("no_such_experiment", {})])
