"""Integration tests: the AM layer must realise LogGP timing exactly.

These tests pin the model identities from Section 2 of the paper:

* a single short message is delivered after ``L + 2o`` (o_send at the
  sender, wire latency L, o_recv at the receiver);
* a request/response pair completes in ``2L + 4o``;
* back-to-back sends are separated by ``g`` once the pipe fills;
* each tuning dial moves exactly its own parameter.
"""

import pytest

from repro.am.tuning import TuningKnobs
from repro.network.loggp import LogGPParams
from tests.helpers import Fabric

NOW = LogGPParams.berkeley_now()


def _echo_handler(am, packet):
    am.host.state["served"] = am.host.state.get("served", 0) + 1
    yield from am.reply(packet.payload)


def echo_server(am, expected):
    """Event-driven server: wait until `expected` requests were echoed."""
    yield from am.wait_until(
        lambda: am.host.state.get("served", 0) >= expected)


def _sink_times(am, packet):
    am.host.state.setdefault("arrivals", []).append(
        (am.sim.now, packet.payload))


def make_fabric(**kwargs):
    fabric = Fabric(**kwargs)
    fabric.table.register("echo", _echo_handler)
    fabric.table.register("sink", _sink_times)
    return fabric


def receiver_loop(am, expected):
    """Poll until `expected` messages have been handled."""
    yield from am.wait_until(
        lambda: len(am.host.state.get("arrivals", [])) >= expected)


def test_single_short_message_delivered_at_L_plus_2o():
    fabric = make_fabric()
    am0, am1 = fabric.ams

    def sender():
        yield from am0.send_oneway(1, "sink", payload="hi")

    fabric.run(sender(), receiver_loop(am1, 1))
    (arrival_time, payload), = am1.host.state["arrivals"]
    assert payload == "hi"
    # o_send + L + o_recv = 1.8 + 5.0 + 4.0 = 10.8 us
    assert arrival_time == pytest.approx(NOW.one_way_time())


def test_rpc_round_trip_is_2L_plus_4o():
    fabric = make_fabric()
    am0, am1 = fabric.ams

    def requester():
        value = yield from am0.rpc(1, "echo", payload=7)
        return (value, fabric.sim.now)

    results = fabric.run(requester(), echo_server(am1, 1))
    value, finish = results[0]
    assert value == 7
    assert finish == pytest.approx(NOW.round_trip_time())  # 21.6 us


def test_rtt_matches_paper_figure3_number():
    # Figure 3 annotates "Round Trip Time = 21 usec" for the NOW.
    assert NOW.round_trip_time() == pytest.approx(21.6, abs=0.7)


def test_added_latency_moves_only_L():
    base = make_fabric()
    dialed = make_fabric(knobs=TuningKnobs.added_latency(50.0))

    def one_message(fabric):
        am0, am1 = fabric.ams

        def sender():
            yield from am0.send_oneway(1, "sink", payload=1)

        fabric.run(sender(), receiver_loop(am1, 1))
        return am1.host.state["arrivals"][0][0]

    baseline_arrival = one_message(base)
    dialed_arrival = one_message(dialed)
    assert dialed_arrival - baseline_arrival == pytest.approx(50.0)


def test_added_overhead_charges_sender_per_message():
    def issue_time(delta_o):
        fabric = make_fabric(knobs=TuningKnobs.added_overhead(delta_o))
        am0, am1 = fabric.ams

        def sender():
            for i in range(4):
                yield from am0.send_oneway(1, "sink", payload=i)
            return fabric.sim.now

        results = fabric.run(sender(), receiver_loop(am1, 4))
        return results[0]

    base_time = issue_time(0.0)
    dialed_time = issue_time(10.0)
    # Four sends, each charged one extra delta_o at the sender.  (The
    # send rate stays below the window, so no gap/window effects.)
    assert dialed_time - base_time == pytest.approx(4 * 10.0)


def test_gap_spaces_wire_injections():
    # With zero overhead dial, a burst of sends queues in the NIC; wire
    # injections must be spaced by g.
    fabric = make_fabric(knobs=TuningKnobs.added_gap(20.0))
    am0, am1 = fabric.ams
    effective_gap = NOW.gap + 20.0

    def sender():
        for i in range(5):
            yield from am0.send_oneway(1, "sink", payload=i)

    fabric.run(sender(), receiver_loop(am1, 5))
    arrivals = [t for t, _ in am1.host.state["arrivals"]]
    spacings = [b - a for a, b in zip(arrivals, arrivals[1:])]
    # Once the transmit queue is backed up, spacing equals the gap.
    assert spacings[-1] == pytest.approx(effective_gap)
    assert max(spacings) <= effective_gap + 1e-9


def test_window_limits_outstanding_messages():
    fabric = make_fabric(window=2)
    am0, am1 = fabric.ams

    def sender():
        # One-way messages: credits come back after one-way wire time +
        # credit return, so with window=2 the sender must stall.
        for i in range(6):
            yield from am0.send_oneway(1, "sink", payload=i)
        return fabric.sim.now

    results = fabric.run(sender(), receiver_loop(am1, 6))
    finish = results[0]
    # Without the window, 6 sends would cost ~6*o_send.  With window=2
    # the sender round-trips credits, so it must take much longer.
    assert finish > 6 * NOW.send_overhead + 2 * NOW.latency


def test_large_latency_raises_effective_gap_through_window():
    # Table 2 (right): with the fixed window, very large L throttles the
    # steady-state send rate to ~RTT/window.
    window = 8
    delta_L = 100.0
    fabric = make_fabric(knobs=TuningKnobs.added_latency(delta_L),
                         window=window)
    am0, am1 = fabric.ams
    n_messages = 64

    def sender():
        start = fabric.sim.now
        for i in range(n_messages):
            yield from am0.send_oneway(1, "sink", payload=i)
        return (fabric.sim.now - start) / n_messages

    results = fabric.run(sender(), receiver_loop(am1, n_messages))
    effective_gap = results[0]
    # Credit round trip ~ (L + delta_L) + credit return (L + delta_L);
    # per-message steady state ~ 2(L+delta_L)/window ~ 26 us >> g = 5.8.
    expected = 2 * (NOW.latency + delta_L) / window
    assert effective_gap == pytest.approx(expected, rel=0.25)
    assert effective_gap > 3 * NOW.gap


def test_bulk_store_delivers_payload_and_costs_G():
    fabric = make_fabric()
    am0, am1 = fabric.ams
    received = {}

    def bulk_handler(am, packet):
        received["payload"] = packet.payload
        received["at"] = am.sim.now
        received["bytes"] = packet.logical_bytes
        return
        yield  # pragma: no cover

    fabric.table.register("bulk_sink", bulk_handler)
    nbytes = 16_384  # 4 fragments

    def sender():
        yield from am0.bulk_store_blocking(1, "bulk_sink",
                                           payload="DATA", nbytes=nbytes)
        return fabric.sim.now

    def server():
        yield from am1.wait_until(lambda: "payload" in received)

    results = fabric.run(sender(), server())
    assert received["payload"] == "DATA"
    assert received["bytes"] == nbytes
    # Four fragments at >= 4096 * G us each must serialise in the
    # transmit context: delivery no earlier than the DMA time.
    dma_time = nbytes * NOW.Gap
    assert received["at"] >= dma_time
    assert results[0] >= received["at"]  # ack comes after delivery


def test_bulk_bandwidth_knob_slows_transfer():
    nbytes = 65_536

    def transfer_time(knobs):
        fabric = make_fabric(knobs=knobs)
        am0, am1 = fabric.ams
        seen = {}

        def handler(am, packet):
            seen["at"] = am.sim.now
            return
            yield  # pragma: no cover

        fabric.table.register("sink_bulk", handler)

        def sender():
            yield from am0.bulk_oneway(1, "sink_bulk", None, nbytes)

        def server():
            yield from am1.wait_until(lambda: "at" in seen)

        fabric.run(sender(), server())
        return seen["at"]

    fast = transfer_time(TuningKnobs())
    slow = transfer_time(TuningKnobs.bulk_bandwidth(5.0, NOW))
    # 38 MB/s -> 5 MB/s: the transfer should take ~7.6x the DMA time.
    assert slow / fast == pytest.approx(38.0 / 5.0, rel=0.15)


def test_oneway_costs_sender_single_overhead():
    fabric = make_fabric()
    am0, am1 = fabric.ams

    def sender():
        yield from am0.send_oneway(1, "sink", payload=0)
        return fabric.sim.now

    results = fabric.run(sender(), receiver_loop(am1, 1))
    assert results[0] == pytest.approx(NOW.send_overhead)


def test_request_gets_automatic_ack_and_credit_back():
    fabric = make_fabric(window=4)
    am0, am1 = fabric.ams
    acked = []

    def sender():
        yield from am0.send_request(1, "sink", payload=0,
                                    on_reply=lambda _p: acked.append(
                                        fabric.sim.now))
        yield from am0.wait_until(lambda: bool(acked))
        return am0.credits_available

    def server():
        yield from am1.wait_until(
            lambda: len(am1.host.state.get("arrivals", [])) >= 1)

    results = fabric.run(sender(), server())
    assert acked, "auto-ack never processed"
    assert results[0] == 4  # credit returned


def test_reply_outside_handler_is_error():
    from repro.am.layer import AmError
    fabric = make_fabric()
    am0 = fabric.ams[0]

    def body():
        yield from am0.reply("nope")

    with pytest.raises(AmError):
        fabric.run(body())


def test_request_from_handler_is_rejected():
    from repro.am.layer import AmError
    fabric = make_fabric()
    am0, am1 = fabric.ams

    def evil_handler(am, packet):
        yield from am.send_request(packet.src, "sink", payload=0)

    fabric.table.register("evil", evil_handler)

    def sender():
        yield from am0.send_oneway(1, "evil", payload=0)

    def server():
        yield from am1.poll()
        while am1.rx_pending == 0:
            yield am1.sim.timeout(1.0)
        yield from am1.poll()

    with pytest.raises(AmError):
        fabric.run(sender(), server())
