"""The microbenchmark applications must recover the LogGP parameters
through the *full* cluster stack."""

import pytest

from repro import Cluster, LogGPParams, TuningKnobs
from repro.apps.microbench import BulkStream, BurstSender, PingPong

NOW = LogGPParams.berkeley_now()


def test_pingpong_reports_model_rtt():
    result = Cluster(n_nodes=2, seed=1).run(PingPong(repeats=16))
    assert result.output == pytest.approx(NOW.round_trip_time(),
                                          abs=0.3)


def test_pingpong_sees_added_latency():
    cluster = Cluster(n_nodes=2, seed=1,
                      knobs=TuningKnobs.added_latency(40.0))
    result = cluster.run(PingPong(repeats=8))
    assert result.output == pytest.approx(NOW.round_trip_time() + 80.0,
                                          abs=0.5)


def test_pingpong_single_node_degenerates():
    result = Cluster(n_nodes=1, seed=1).run(PingPong(repeats=4))
    assert result.output == 0.0


def test_burst_sender_steady_state_is_gap_bound():
    result = Cluster(n_nodes=4, seed=1).run(
        BurstSender(n_messages=64, interval_us=0.0))
    # Flat-out on a ring where every node both sends and acknowledges:
    # two packets traverse each transmit context per application
    # message, so the steady-state initiation interval approaches 2g.
    # (The Figure 3 calibration sees g itself because its receiver is a
    # dedicated echo server.)
    assert result.output == pytest.approx(2 * NOW.gap, rel=0.15)


def test_burst_sender_feels_added_gap():
    cluster = Cluster(n_nodes=4, seed=1,
                      knobs=TuningKnobs.added_gap(50.0))
    result = cluster.run(BurstSender(n_messages=64))
    # Each app message plus its ack pass the transmit context, so the
    # steady-state initiation interval approaches 2 x g_total.
    assert result.output > 1.2 * (NOW.gap + 50.0)


def test_paced_burst_sender_ignores_gap():
    knobs = TuningKnobs.added_gap(50.0)
    paced = BurstSender(n_messages=32, interval_us=250.0)
    base = Cluster(n_nodes=4, seed=1).run(paced).output
    dialed = Cluster(n_nodes=4, seed=1, knobs=knobs).run(paced).output
    assert dialed == pytest.approx(base, rel=0.1)


def test_bulk_stream_achieves_machine_bandwidth():
    result = Cluster(n_nodes=2, seed=1).run(
        BulkStream(total_bytes=131_072, message_bytes=16_384))
    assert result.output == pytest.approx(NOW.bulk_bandwidth_mb_s,
                                          rel=0.15)


def test_bulk_stream_tracks_bandwidth_dial():
    cluster = Cluster(n_nodes=2, seed=1,
                      knobs=TuningKnobs.bulk_bandwidth(5.0, NOW))
    result = cluster.run(BulkStream(total_bytes=65_536))
    assert result.output == pytest.approx(5.0, rel=0.15)


def test_parameter_validation():
    with pytest.raises(ValueError):
        PingPong(repeats=0)
    with pytest.raises(ValueError):
        BurstSender(n_messages=0)
    with pytest.raises(ValueError):
        BulkStream(total_bytes=10, message_bytes=100)
