"""Integration tests: the global address space over the full stack."""

import pytest

from repro import Cluster
from repro.apps.base import Application
from repro.gas.sync import DistributedLock


class _Lambda(Application):
    """Wrap a run_rank generator function as an Application."""

    name = "test-app"

    def __init__(self, body, setup=None, finalize=None):
        self._body = body
        self._setup = setup
        self._finalize = finalize

    def setup_rank(self, proc):
        if self._setup is not None:
            yield from self._setup(proc)

    def run_rank(self, proc):
        yield from self._body(proc)

    def finalize(self, procs):
        if self._finalize is not None:
            return self._finalize(procs)
        return None


def run_app(body, n_nodes=4, setup=None, finalize=None, **cluster_kw):
    cluster = Cluster(n_nodes=n_nodes, **cluster_kw)
    return cluster.run(_Lambda(body, setup=setup, finalize=finalize))


def test_remote_read_returns_owner_value():
    def body(proc):
        arr = proc.allocate(8, name="data")
        proc.local(arr)[:] = proc.rank * 100
        yield from proc.barrier()
        # Every rank reads element 0 of every block.
        for index in range(8):
            owner, _ = arr.owner_of(index)
            value = yield from proc.read(arr, index)
            assert value == owner * 100

    run_app(body, n_nodes=4)


def test_pipelined_writes_land_after_sync():
    def body(proc):
        arr = proc.allocate(16, name="target")
        yield from proc.barrier()
        # Each rank writes its rank into its "column" across all blocks.
        for index in range(proc.rank, 16, proc.n_ranks):
            yield from proc.write(arr, index, proc.rank + 1)
        yield from proc.sync()
        yield from proc.barrier()
        proc.state["local"] = proc.local(arr).copy()

    def finalize(procs):
        collected = []
        for proc in procs:
            collected.extend(proc.state["local"].tolist())
        return collected

    result = run_app(body, n_nodes=4, finalize=finalize)
    expected = [(i % 4) + 1 for i in range(16)]
    assert result.output == expected


def test_write_add_mode_accumulates():
    def body(proc):
        counter = proc.allocate(1, name="counter")
        yield from proc.barrier()
        for _ in range(3):
            yield from proc.write(counter, 0, 1, mode="add")
        yield from proc.sync()
        yield from proc.barrier()
        if proc.rank == 0:
            proc.state["total"] = int(proc.local(counter)[0])

    result = run_app(body, n_nodes=4,
                     finalize=lambda procs: procs[0].state["total"])
    assert result.output == 12


def test_bulk_get_round_trips_remote_block():
    def body(proc):
        arr = proc.allocate(40, name="bulk")
        local = proc.local(arr)
        start = arr.local_start(proc.rank)
        local[:] = [start + i for i in range(len(local))]
        yield from proc.barrier()
        peer = (proc.rank + 1) % proc.n_ranks
        peer_start = arr.local_start(peer)
        values = yield from proc.bulk_get(arr, peer_start, 10)
        assert list(values) == [peer_start + i for i in range(10)]

    run_app(body, n_nodes=4)


def test_bulk_put_lands_remote():
    def body(proc):
        arr = proc.allocate(40, name="bulkput")
        yield from proc.barrier()
        peer = (proc.rank + 1) % proc.n_ranks
        peer_start = arr.local_start(peer)
        yield from proc.bulk_put(arr, peer_start,
                                 [proc.rank] * 10)
        yield from proc.sync()
        yield from proc.barrier()
        left = (proc.rank - 1) % proc.n_ranks
        assert all(v == left for v in proc.local(arr))

    run_app(body, n_nodes=4)


def test_barrier_synchronises_ranks():
    def body(proc):
        # Stagger ranks; after the barrier all clocks must be past the
        # slowest rank's compute.
        yield from proc.compute(proc.rank * 50.0)
        yield from proc.barrier()
        proc.state["after"] = proc.sim.now

    def finalize(procs):
        return [p.state["after"] for p in procs]

    result = run_app(body, n_nodes=4, finalize=finalize)
    slowest = 3 * 50.0
    assert all(t >= slowest for t in result.output)


def test_broadcast_from_nonzero_root():
    def body(proc):
        value = yield from proc.broadcast(
            value="secret" if proc.rank == 2 else None, root=2)
        assert value == "secret"

    run_app(body, n_nodes=5)


def test_reduce_sums_to_root():
    def body(proc):
        total = yield from proc.reduce(proc.rank + 1, lambda a, b: a + b,
                                       root=0)
        if proc.rank == 0:
            assert total == sum(range(1, 7))
        else:
            assert total is None

    run_app(body, n_nodes=6)


def test_allreduce_max_lands_everywhere():
    def body(proc):
        top = yield from proc.allreduce(proc.rank * 10, max)
        assert top == 30

    run_app(body, n_nodes=4)


def test_distributed_lock_mutual_exclusion():
    def body(proc):
        lock = DistributedLock(home_rank=0, lock_id=1)
        shared = proc.allocate(1, name="shared")
        yield from proc.barrier()
        for _ in range(5):
            yield from proc.lock(lock)
            # Critical section: read-modify-write a remote counter.
            value = yield from proc.read(shared, 0)
            yield from proc.compute(2.0)
            yield from proc.write(shared, 0, value + 1)
            yield from proc.sync()
            yield from proc.unlock(lock)
        yield from proc.barrier()
        if proc.rank == 0:
            proc.state["count"] = int(proc.local(shared)[0])

    result = run_app(body, n_nodes=4,
                     finalize=lambda procs: procs[0].state["count"])
    # Without mutual exclusion the read-modify-write would lose updates.
    assert result.output == 4 * 5


def test_livelock_guard_raises():
    from repro.gas.runtime import LivelockError

    def body(proc):
        lock = DistributedLock(home_rank=0, lock_id=7)
        if proc.rank == 0:
            # Take the lock and never release: everyone else spins.
            yield from proc.lock(lock)
            yield from proc.compute(1e9)
        else:
            yield from proc.lock(lock)

    with pytest.raises(LivelockError):
        run_app(body, n_nodes=2, livelock_limit=50)


def test_runtime_measures_timed_region_only():
    def setup(proc):
        yield from proc.compute(10_000.0)  # untimed

    def body(proc):
        yield from proc.compute(500.0)

    result = run_app(body, n_nodes=2, setup=setup)
    # Untimed setup (10 ms) must not appear in the runtime; the timed
    # region is ~500 us plus two barriers.
    assert 500.0 <= result.runtime_us < 1500.0


def test_stats_count_messages_in_timed_region():
    def body(proc):
        arr = proc.allocate(proc.n_ranks, name="stats")
        yield from proc.barrier()
        peer = (proc.rank + 1) % proc.n_ranks
        for _ in range(10):
            yield from proc.write(arr, peer, 1, mode="add")
        yield from proc.sync()

    result = run_app(body, n_nodes=4)
    stats = result.stats
    # Each rank sent 10 write requests; each also sent 10 acks for its
    # neighbour's writes, plus barrier traffic.
    assert stats.total_messages >= 4 * 20
    assert stats.matrix.sum() == stats.total_messages


def test_run_is_deterministic():
    def body(proc):
        arr = proc.allocate(64, name="det")
        yield from proc.barrier()
        for i in range(16):
            index = proc.rng.randrange(64)
            yield from proc.write(arr, index, 1, mode="add")
        yield from proc.sync()
        yield from proc.barrier()

    first = run_app(body, n_nodes=4, seed=3)
    second = run_app(body, n_nodes=4, seed=3)
    assert first.runtime_us == second.runtime_us
    assert (first.stats.matrix == second.stats.matrix).all()
