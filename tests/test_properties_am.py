"""Property-based tests of AM-layer conservation invariants.

For arbitrary traffic patterns: nothing is lost, nothing is duplicated,
credits are conserved, and the clock only moves forward.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.am.layer import AmLayer, HandlerTable
from repro.am.tuning import TuningKnobs
from repro.network.loggp import LogGPParams
from repro.network.wire import Wire
from repro.sim import Simulator

SIM_SETTINGS = settings(max_examples=25, deadline=None,
                        suppress_health_check=[HealthCheck.too_slow])


class _Host:
    def __init__(self):
        self.state = {"got": []}


def build_fabric(n_nodes, knobs=None, window=8):
    sim = Simulator()
    params = LogGPParams.berkeley_now()
    wire = Wire(sim, params.latency)
    table = HandlerTable()
    table.register(
        "prop_sink",
        lambda am, pkt: am.host.state["got"].append(pkt.payload))
    ams = []
    for node in range(n_nodes):
        am = AmLayer(sim, node, params, knobs or TuningKnobs(), wire,
                     table, window=window)
        am.host = _Host()
        ams.append(am)
    return sim, ams


#: A traffic script: per sender, a list of (dst_offset, oneway?) ops.
traffic = st.lists(
    st.lists(st.tuples(st.integers(min_value=1, max_value=3),
                       st.booleans()),
             min_size=0, max_size=12),
    min_size=2, max_size=4)


@given(script=traffic,
       delta_o=st.sampled_from([0.0, 10.0]),
       delta_L=st.sampled_from([0.0, 30.0]),
       window=st.sampled_from([1, 2, 8]))
@SIM_SETTINGS
def test_no_message_lost_or_duplicated(script, delta_o, delta_L,
                                       window):
    n_nodes = len(script)
    knobs = TuningKnobs(delta_o=delta_o, delta_L=delta_L)
    sim, ams = build_fabric(n_nodes, knobs=knobs, window=window)
    sent = []
    drained = {"count": 0}

    def node_process(rank, ops):
        # One process per node (the AM layer's contract): send, drain,
        # then keep serving until every node has drained.
        am = ams[rank]
        for index, (offset, oneway) in enumerate(ops):
            dst = (rank + offset) % n_nodes
            if dst == rank:
                continue
            tag = (rank, index)
            sent.append(tag)
            if oneway:
                yield from am.send_oneway(dst, "prop_sink", tag)
            else:
                yield from am.send_request(dst, "prop_sink", tag)
        yield from am.drain()
        drained["count"] += 1
        for other in ams:
            other._kick()
        yield from am.wait_until(
            lambda: drained["count"] == n_nodes and am.rx_pending == 0)

    processes = [sim.process(node_process(rank, ops))
                 for rank, ops in enumerate(script)]
    sim.run(stop_event=sim.all_of(processes))

    received = [tag for am in ams for tag in am.host.state["got"]]
    assert sorted(received) == sorted(sent)
    assert len(set(received)) == len(received)
    # Credits fully restored everywhere.
    for am in ams:
        assert all(c == window for c in am._credits.values())
        assert am.rx_pending == 0


@given(script=traffic)
@SIM_SETTINGS
def test_time_and_event_counts_are_deterministic(script):
    def run_once():
        n_nodes = len(script)
        sim, ams = build_fabric(n_nodes)

        drained = {"count": 0}

        def node_process(rank, ops):
            am = ams[rank]
            for offset, oneway in ops:
                dst = (rank + offset) % n_nodes
                if dst == rank:
                    continue
                yield from am.send_request(dst, "prop_sink", 0)
            yield from am.drain()
            drained["count"] += 1
            for other in ams:
                other._kick()
            yield from am.wait_until(
                lambda: drained["count"] == n_nodes
                and am.rx_pending == 0)

        processes = [sim.process(node_process(rank, ops))
                     for rank, ops in enumerate(script)]
        sim.run(stop_event=sim.all_of(processes))
        return sim.now, sim.events_processed

    assert run_once() == run_once()
