"""Failure injection: the runtime must fail loudly, not hang or lie."""

import pytest

from repro import Cluster
from repro.apps.base import Application
from repro.gas.sync import DistributedLock


class _Lambda(Application):
    name = "fault-app"

    def __init__(self, body):
        self._body = body

    def run_rank(self, proc):
        yield from self._body(proc)


def run_app(body, n_nodes=3, **kw):
    return Cluster(n_nodes=n_nodes, **kw).run(_Lambda(body))


def test_application_exception_propagates():
    def body(proc):
        yield from proc.compute(1.0)
        if proc.rank == 1:
            raise RuntimeError("injected app bug")

    with pytest.raises(RuntimeError, match="injected app bug"):
        run_app(body)


def test_hung_rank_hits_run_limit():
    def body(proc):
        if proc.rank == 0:
            # Waits forever on a condition nobody satisfies.
            yield from proc.am.wait_until(lambda: False)
        else:
            yield from proc.compute(10.0)

    with pytest.raises(TimeoutError):
        run_app(body, run_limit_us=10_000.0)


def test_mismatched_collectives_hit_run_limit():
    def body(proc):
        # Rank 0 skips a barrier everyone else enters: classic SPMD bug.
        if proc.rank != 0:
            yield from proc.barrier()
        yield from proc.compute(1.0)

    with pytest.raises(TimeoutError):
        run_app(body, run_limit_us=10_000.0)


def test_unknown_handler_name_is_loud():
    def body(proc):
        if proc.rank == 0:
            yield from proc.am.send_request(1, "no_such_handler", 0)
        yield from proc.barrier()

    from repro.am.layer import AmError
    with pytest.raises(AmError, match="no_such_handler"):
        run_app(body)


def test_out_of_range_global_index_is_loud():
    def body(proc):
        arr = proc.allocate(8, name="oob")
        yield from proc.barrier()
        yield from proc.read(arr, 8)

    with pytest.raises(IndexError):
        run_app(body)


def test_releasing_unheld_local_lock_is_loud():
    def body(proc):
        lock = DistributedLock(home_rank=proc.rank, lock_id=1)
        yield from proc.unlock(lock)

    with pytest.raises(RuntimeError, match="does not hold"):
        run_app(body, n_nodes=1)


def test_negative_compute_rejected():
    def body(proc):
        yield from proc.compute(-5.0)

    with pytest.raises(ValueError):
        run_app(body, n_nodes=1)


def test_unsynced_writes_still_complete_via_runtime_drain():
    # An app that forgets proc.sync(): the runtime's teardown drains
    # outstanding writes, so the data still lands and the run ends.
    def body(proc):
        arr = proc.allocate(proc.n_ranks, name="lazy")
        proc.state["lazy"] = arr
        yield from proc.barrier()
        peer = (proc.rank + 1) % proc.n_ranks
        yield from proc.write(arr, peer, 42)
        # no sync() here -- deliberately sloppy

    result = run_app(body, n_nodes=3)
    assert result.runtime_us > 0


def test_write_to_invalid_mode_rejected():
    def body(proc):
        arr = proc.allocate(4, name="mode")
        yield from proc.write(arr, 0, 1, mode="xor")

    with pytest.raises(ValueError, match="unknown write mode"):
        run_app(body, n_nodes=1)
