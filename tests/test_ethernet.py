"""Tests for the shared-medium LAN fabric."""

import numpy as np
import pytest

from repro import Cluster, LogGPParams
from repro.apps import RadixSort
from repro.network.ethernet import SharedMediumFabric
from repro.network.packet import Packet, PacketKind
from repro.sim import Simulator


class _StubNic:
    def __init__(self):
        self.arrivals = []

    def receive_from_wire(self, packet):
        self.arrivals.append((packet.payload, packet.injected_at))


def test_transit_is_serialisation_plus_forwarding():
    sim = Simulator()
    fabric = SharedMediumFabric(sim, bandwidth_mb_s=1.25,
                                forward_us=50.0)
    nic = _StubNic()
    fabric.attach(1, nic)
    fabric.carry(Packet(kind=PacketKind.REQUEST, src=0, dst=1,
                        size_bytes=125))
    sim.run()
    # 125 B at 1.25 MB/s = 100 us on the medium, + 50 us forwarding.
    assert sim.now == pytest.approx(150.0)


def test_single_medium_serialises_all_senders():
    sim = Simulator()
    fabric = SharedMediumFabric(sim, bandwidth_mb_s=1.0,
                                forward_us=0.0)
    nics = {}
    for node in (2, 3):
        nics[node] = _StubNic()
        fabric.attach(node, nics[node])
    # Two packets from *different* sources to different destinations
    # still share the one cable.
    fabric.carry(Packet(kind=PacketKind.REQUEST, src=0, dst=2,
                        size_bytes=1000, payload="a"))
    fabric.carry(Packet(kind=PacketKind.REQUEST, src=1, dst=3,
                        size_bytes=1000, payload="b"))
    sim.run()
    assert sim.now == pytest.approx(2000.0)
    assert fabric.utilisation() == pytest.approx(1.0)


def test_unattached_destination_errors():
    sim = Simulator()
    fabric = SharedMediumFabric(sim)
    with pytest.raises(KeyError):
        fabric.carry(Packet(kind=PacketKind.REQUEST, src=0, dst=5))
    with pytest.raises(ValueError):
        SharedMediumFabric(sim, bandwidth_mb_s=0.0)


def test_cluster_runs_over_ethernet():
    cluster = Cluster(n_nodes=4, seed=6, fabric="ethernet",
                      params=LogGPParams.lan_tcp())
    result = cluster.run(RadixSort(keys_per_proc=32))
    assert np.all(np.diff(result.output) >= 0)


def test_lan_is_dramatically_slower_than_the_now():
    """The motivating comparison: the same program on the NOW vs a
    TCP/IP LAN with a shared 10 Mbit medium."""
    app = RadixSort(keys_per_proc=32)
    now = Cluster(n_nodes=4, seed=6).run(app)
    lan = Cluster(n_nodes=4, seed=6, fabric="ethernet",
                  params=LogGPParams.lan_tcp()).run(app)
    # The paper's overhead sweep alone reaches ~30-50x; with the shared
    # medium on top the LAN should be at least ~20x slower here.
    assert lan.runtime_us / now.runtime_us > 20.0
