"""Tests for the occupancy extension (the Flash study's parameter).

Occupancy is NIC-context time per message at *both* interfaces: it
lengthens every one-way trip by 2·occ and bounds each interface's
message rate at 1/occ once occ exceeds the gap.
"""

import pytest

from repro import Cluster, LogGPParams, TuningKnobs
from repro.apps import RadixSort
from repro.calibrate import measure_parameters, round_trip_time
from tests.helpers import Fabric

NOW = LogGPParams.berkeley_now()


def _sink(am, packet):
    am.host.state.setdefault("arrivals", []).append(am.sim.now)


def _delivery_time(knobs):
    fabric = Fabric(knobs=knobs)
    fabric.table.register("occ_sink", _sink)
    am0, am1 = fabric.ams

    def sender():
        yield from am0.send_oneway(1, "occ_sink", payload=0)

    def receiver():
        yield from am1.wait_until(
            lambda: bool(am1.host.state.get("arrivals")))

    fabric.run(sender(), receiver())
    return am1.host.state["arrivals"][0]


def test_occupancy_adds_to_one_way_time_at_both_ends():
    base = _delivery_time(TuningKnobs())
    dialed = _delivery_time(TuningKnobs.added_occupancy(25.0))
    # 25 us at the sending NIC (pre-injection) + 25 at the receiving.
    assert dialed - base == pytest.approx(50.0)


def test_occupancy_adds_to_round_trip():
    base = round_trip_time()
    dialed = round_trip_time(knobs=TuningKnobs.added_occupancy(10.0))
    # Four interface traversals per round trip.
    assert dialed - base == pytest.approx(40.0)


def test_occupancy_throttles_message_rate():
    # A burst through one pair: the receive context serialises at occ.
    occ = 50.0
    fabric = Fabric(knobs=TuningKnobs.added_occupancy(occ))
    fabric.table.register("occ_sink", _sink)
    am0, am1 = fabric.ams
    n = 16

    def sender():
        for i in range(n):
            yield from am0.send_oneway(1, "occ_sink", payload=i)

    def receiver():
        yield from am1.wait_until(
            lambda: len(am1.host.state.get("arrivals", [])) >= n)

    fabric.run(sender(), receiver())
    arrivals = am1.host.state["arrivals"]
    spacings = [b - a for a, b in zip(arrivals, arrivals[1:])]
    # Steady-state spacing is the occupancy, not the (smaller) gap.
    assert spacings[-1] == pytest.approx(occ, rel=0.05)


def test_occupancy_leaves_host_overhead_alone():
    measured = measure_parameters(
        knobs=TuningKnobs.added_occupancy(20.0))
    # o_send is a host cost; occupancy lives on the NIC.
    assert measured.send_overhead == pytest.approx(NOW.send_overhead,
                                                   abs=0.1)


def test_occupancy_hurts_a_frequently_communicating_app():
    """The Flash study's observation (quoted in the paper's Section 6):
    applications are surprisingly sensitive to occupancy — here it bites
    at least as hard as the same amount of pure latency."""
    app = RadixSort(keys_per_proc=128)
    base = Cluster(n_nodes=4, seed=2)
    baseline = base.run(app).runtime_us
    occupied = base.with_knobs(
        TuningKnobs.added_occupancy(25.0)).run(app).runtime_us
    latent = base.with_knobs(
        TuningKnobs.added_latency(50.0)).run(app).runtime_us
    assert occupied / baseline > 2.0
    assert occupied >= latent  # occ = L-like delay + g-like rate limit


def test_occupancy_is_not_baseline():
    assert not TuningKnobs.added_occupancy(1.0).is_baseline
    assert "+occ=1.0us" in TuningKnobs.added_occupancy(1.0).describe()
