"""The simlint engine: suppressions, baseline round trip, CLI, and the
repo gate (``src/repro`` itself must lint clean)."""

import json
from pathlib import Path

import pytest

from repro.analysis import (Baseline, Finding, all_rules, analyze_file,
                            analyze_paths, default_rules, main)
from repro.analysis.core import PARSE_ERROR_RULE, SourceFile, analyze_source

FIXTURES = Path(__file__).parent / "fixtures" / "simlint"
REPO_ROOT = Path(__file__).parent.parent


# -- suppressions -----------------------------------------------------------

def test_inline_suppression_silences_only_named_rule():
    source = SourceFile("x.py", (
        "import time\n"
        "a = time.time()  # simlint: disable=wall-clock - justified\n"
        "b = time.time()  # simlint: disable=env-read - wrong rule\n"
    ))
    findings = analyze_source(source, default_rules())
    assert [f.line for f in findings] == [3]
    assert findings[0].rule == "wall-clock"


def test_suppression_without_rule_list_disables_everything():
    source = SourceFile("x.py", (
        "import time\n"
        "a = time.time()  # simlint: disable\n"
    ))
    assert analyze_source(source, default_rules()) == []


def test_next_line_and_file_suppressions():
    next_line = SourceFile("x.py", (
        "import time\n"
        "# simlint: disable-next-line=wall-clock\n"
        "a = time.time()\n"
    ))
    assert analyze_source(next_line, default_rules()) == []
    whole_file = SourceFile("x.py", (
        "# simlint: disable-file=wall-clock\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.time()\n"
    ))
    assert analyze_source(whole_file, default_rules()) == []


def test_suppression_covers_multi_line_statements():
    source = SourceFile("x.py", (
        "import numpy as np\n"
        "rng = np.random.RandomState(  # simlint: disable=seed-independent-rng - fixture\n"
        "    3 + 17)\n"
    ))
    assert analyze_source(source, default_rules()) == []


def test_suppressed_fixture_is_fully_silenced():
    assert analyze_file(FIXTURES / "suppressed.py",
                        default_rules()) == []


# -- harness exemption ------------------------------------------------------

def test_wall_clock_and_env_rules_exempt_the_harness():
    text = ("import os, time\n"
            "t = time.time()\n"
            "d = os.environ.get('X')\n")
    inside = SourceFile("src/repro/harness/cli.py", text)
    outside = SourceFile("src/repro/sim/engine.py", text)
    assert analyze_source(inside, default_rules()) == []
    assert {f.rule for f in analyze_source(outside, default_rules())} \
        == {"wall-clock", "env-read"}


# -- parse errors -----------------------------------------------------------

def test_syntax_error_becomes_a_parse_error_finding():
    source = SourceFile("broken.py", "def broken(:\n")
    findings = analyze_source(source, default_rules())
    assert len(findings) == 1
    assert findings[0].rule == PARSE_ERROR_RULE


# -- baseline ---------------------------------------------------------------

def test_baseline_round_trip_silences_grandfathered_findings(tmp_path):
    path = FIXTURES / "hygiene_bad.py"
    source = SourceFile(str(path), path.read_text())
    findings = analyze_source(source, default_rules())
    assert findings
    sources = {source.path: source}
    baseline = Baseline.from_findings(findings, sources)
    baseline_path = tmp_path / "baseline.json"
    baseline.save(baseline_path)

    reloaded = Baseline.load(baseline_path)
    assert len(reloaded) == len(findings)
    new, old = reloaded.split(findings, sources)
    assert new == [] and len(old) == len(findings)


def test_baseline_survives_line_shifts_but_not_content_changes():
    original = SourceFile("m.py", "import time\nt = time.time()\n")
    findings = analyze_source(original, default_rules())
    baseline = Baseline.from_findings(findings,
                                      {original.path: original})
    # Same offending line, shifted down: still covered.
    shifted = SourceFile("m.py",
                         "import time\n\n\nt = time.time()\n")
    moved = analyze_source(shifted, default_rules())
    assert all(baseline.covers(f, shifted) for f in moved)
    # Changed line content: a new finding, not covered.
    edited = SourceFile("m.py",
                        "import time\nt2 = time.time()\n")
    changed = analyze_source(edited, default_rules())
    assert not any(baseline.covers(f, edited) for f in changed)


def test_baseline_rejects_unknown_format(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"format": 99, "findings": []}))
    with pytest.raises(ValueError):
        Baseline.load(bad)


# -- CLI --------------------------------------------------------------------

def test_cli_exit_codes_and_text_output(capsys):
    assert main([str(FIXTURES / "determinism_good.py")]) == 0
    assert main([str(FIXTURES / "determinism_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "seed-independent-rng" in out
    assert main(["/nonexistent/path.py"]) == 2
    assert main(["--rules", "no-such-rule",
                 str(FIXTURES / "determinism_good.py")]) == 2


def test_cli_json_format(capsys):
    assert main(["--format", "json",
                 str(FIXTURES / "spmd_bad.py")]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 1
    assert report["files_checked"] == 1
    rules = {f["rule"] for f in report["findings"]}
    assert rules == {"unyielded-blocking-call",
                     "rank-dependent-collective", "handler-arity"}


def test_cli_rules_subset(capsys):
    code = main(["--rules", "wall-clock",
                 str(FIXTURES / "determinism_bad.py")])
    assert code == 1
    out = capsys.readouterr().out
    assert "wall-clock" in out and "unseeded-rng" not in out


def test_cli_write_baseline_then_gate_passes(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    target = str(FIXTURES / "hygiene_bad.py")
    assert main([target, "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    # With every finding grandfathered, the gate passes...
    assert main([target, "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out
    # ...and without the baseline it still fails.
    assert main([target]) == 1


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in all_rules():
        assert rule_id in out


# -- the repo gate ----------------------------------------------------------

def test_src_repro_lints_clean():
    """Acceptance: the linter runs clean on the repo's own sources,
    ten-app suite included — no baseline required."""
    findings, checked = analyze_paths([REPO_ROOT / "src" / "repro"],
                                      default_rules())
    assert checked > 60
    assert findings == []


def test_committed_baseline_is_empty_for_apps():
    """Repo policy: app findings are fixed, never grandfathered (the
    whole committed baseline is empty)."""
    baseline = Baseline.load(REPO_ROOT / "simlint.baseline.json")
    assert [e for e in baseline.entries
            if "apps" in Path(e["path"]).parts] == []
    assert len(baseline) == 0
