"""Tests for repro.coll: conformance, tuning policies, and bit-identity.

The conformance matrix runs every registered algorithm of every
primitive under simsan on awkward rank counts (including non-powers of
two), so one run proves three properties at once: the schedule computes
the right answer, it is race- and deadlock-free, and the sanitizer's
presence does not perturb it.
"""

import dataclasses

import numpy as np
import pytest

from repro.am.tuning import TuningKnobs
from repro.apps.radix import RadixSort
from repro.cluster.machine import Cluster
from repro.coll.algorithms import (DEFAULT_ALGORITHMS, PRIMITIVES,
                                   algorithms_for, eligible_algorithms,
                                   get_algorithm, registry)
from repro.coll.bench import CollectiveBench
from repro.coll.model import estimate_cost, predicted_ranking
from repro.coll.tuner import (CollConfig, FixedPolicy, MeasuredPolicy,
                              ModelPolicy, build_decision_table,
                              tuner_from_config)
from repro.harness.runcache import run_key_spec
from repro.network.loggp import LogGPParams

RANK_COUNTS = (1, 2, 3, 5, 8, 13)

ALGORITHM_MATRIX = [(primitive, algo)
                    for primitive in PRIMITIVES
                    for algo in algorithms_for(primitive)]


# -- registry ---------------------------------------------------------------

def test_registry_has_at_least_two_algorithms_per_primitive():
    for primitive, algos in registry().items():
        assert len(algos) >= 2, primitive


def test_defaults_are_registered_and_eligible_everywhere():
    for primitive in PRIMITIVES:
        default = DEFAULT_ALGORITHMS[primitive]
        assert default in algorithms_for(primitive)
        # The default must survive the most restrictive trait set
        # (sparse, non-elementwise), since it is the unconditional
        # fallback.
        assert default in eligible_algorithms(primitive)


def test_get_algorithm_rejects_unknown_names():
    with pytest.raises(KeyError, match="ring"):
        get_algorithm("barrier", "ring")
    with pytest.raises(KeyError):
        get_algorithm("nope", "flat")


# -- conformance matrix -----------------------------------------------------

@pytest.mark.parametrize("primitive,algo", ALGORITHM_MATRIX)
def test_algorithm_conformance_under_simsan(primitive, algo):
    """Right answer, race-free, on every rank count, short and bulk."""
    for n_nodes in RANK_COUNTS:
        for bulk in (False, True):
            cluster = Cluster(n_nodes, seed=3, sanitize=True)
            result = cluster.run(CollectiveBench(
                primitive, algo=algo, size=256, bulk=bulk, iterations=2))
            assert result.output == f"{primitive}:ok"
            report = result.sanitizer
            assert report is None or not report.races, \
                (primitive, algo, n_nodes, bulk)


@pytest.mark.parametrize("primitive,algo", ALGORITHM_MATRIX)
def test_algorithm_determinism_across_reruns(primitive, algo):
    def once():
        result = Cluster(5, seed=7).run(CollectiveBench(
            primitive, algo=algo, size=512, bulk=True, iterations=3))
        return result.runtime_us, result.events_processed
    assert once() == once()


def test_sanitizer_does_not_perturb_collective_timing():
    for primitive in ("allreduce", "alltoall"):
        plain = Cluster(5, seed=2).run(
            CollectiveBench(primitive, size=256, iterations=2))
        sanitized = Cluster(5, seed=2, sanitize=True).run(
            CollectiveBench(primitive, size=256, iterations=2))
        assert plain.runtime_us == sanitized.runtime_us
        assert plain.events_processed == sanitized.events_processed


# -- explicit algorithm validation ------------------------------------------

def test_explicit_unknown_algorithm_raises():
    with pytest.raises(KeyError):
        Cluster(4, seed=0).run(
            CollectiveBench("broadcast", algo="ring", iterations=1))


def test_explicit_ineligible_algorithm_raises():
    """ring allreduce needs an elementwise-declared reduction."""
    class SparseRingBench(CollectiveBench):
        def _invoke(self, proc, iteration):
            from repro.coll import api
            got = yield from api.allreduce(
                proc, proc.rank, lambda a, b: a + b, size=32,
                elementwise=False, algo="ring")
            return got

    with pytest.raises(ValueError, match="not eligible"):
        Cluster(4, seed=0).run(
            SparseRingBench("allreduce", iterations=1))


# -- the cost model ---------------------------------------------------------

def test_estimate_cost_positive_and_rankable():
    params = LogGPParams.berkeley_now()
    knobs = TuningKnobs()
    for primitive in PRIMITIVES:
        ranking = predicted_ranking(primitive, 8, 4096, params, knobs,
                                    bulk=True)
        assert len(ranking) == len(algorithms_for(primitive))
        assert all(cost > 0 for cost, _algo in ranking)
        costs = [cost for cost, _algo in ranking]
        assert costs == sorted(costs)


def test_model_sees_bandwidth_crossover_for_bulk_broadcast():
    """Chain beats binomial for big bulk payloads on a slow wire, and
    the ordering flips for short latency-bound payloads."""
    params = LogGPParams.berkeley_now()
    slow = TuningKnobs.bulk_bandwidth(1.0, params)
    big_chain = estimate_cost("broadcast", "chain", 16, 65536, params,
                              slow, bulk=True)
    big_binomial = estimate_cost("broadcast", "binomial", 16, 65536,
                                 params, slow, bulk=True)
    assert big_chain < big_binomial
    small_chain = estimate_cost("broadcast", "chain", 16, 32, params,
                                TuningKnobs())
    small_binomial = estimate_cost("broadcast", "binomial", 16, 32,
                                   params, TuningKnobs())
    assert small_binomial < small_chain


# -- tuning policies --------------------------------------------------------

def test_coll_config_validation():
    with pytest.raises(ValueError, match="policy"):
        CollConfig(policy="adaptive")
    with pytest.raises(ValueError, match="algorithm"):
        CollConfig(choices=(("broadcast", "ring"),))
    with pytest.raises(ValueError, match="decision table"):
        CollConfig(policy="measured")
    assert CollConfig().is_default
    assert not CollConfig(choices=(("broadcast", "chain"),)).is_default


def test_default_config_normalises_to_no_tuner():
    cluster = Cluster(4, coll=CollConfig())
    assert cluster.coll is None
    assert isinstance(tuner_from_config(None), FixedPolicy)
    assert isinstance(
        tuner_from_config(CollConfig(policy="model")), ModelPolicy)
    table = (("broadcast", 4, 32, False, "binomial"),)
    assert isinstance(
        tuner_from_config(CollConfig(policy="measured", table=table)),
        MeasuredPolicy)


def test_fixed_policy_override_dispatches_other_algorithm():
    baseline = Cluster(5, seed=4).run(
        CollectiveBench("broadcast", size=8192, bulk=True, iterations=2))
    tuned = Cluster(5, seed=4,
                    coll=CollConfig(choices=(("broadcast", "chain"),))
                    ).run(
        CollectiveBench("broadcast", size=8192, bulk=True, iterations=2))
    assert "broadcast/binomial" in baseline.stats.collective_calls
    assert "broadcast/chain" in tuned.stats.collective_calls
    assert tuned.runtime_us != baseline.runtime_us


def test_measured_policy_follows_its_table():
    table = (("broadcast", 5, 8192, True, "chain"),)
    result = Cluster(5, seed=4,
                     coll=CollConfig(policy="measured", table=table)).run(
        CollectiveBench("broadcast", size=8192, bulk=True, iterations=2))
    assert "broadcast/chain" in result.stats.collective_calls


def test_decision_table_is_bit_stable_and_covers_grid():
    kwargs = dict(n_ranks=4, sizes=(32, 4096),
                  primitives=("broadcast", "allreduce"), seed=5,
                  iterations=2)
    first = build_decision_table(**kwargs)
    second = build_decision_table(**kwargs)
    assert first == second
    assert len(first) == 4  # 2 primitives x 2 sizes
    for primitive, n_ranks, nbytes, bulk, algo in first:
        assert algo in algorithms_for(primitive)
        assert bulk == (nbytes > 64)


# -- cache keys -------------------------------------------------------------

def test_run_key_spec_normalises_default_coll_config():
    app = CollectiveBench("barrier", iterations=1)
    params = LogGPParams.berkeley_now()
    base = run_key_spec(app, 4, params, TuningKnobs(), 0)
    defaulted = run_key_spec(app, 4, params, TuningKnobs(), 0,
                             coll=CollConfig())
    tuned = run_key_spec(app, 4, params, TuningKnobs(), 0,
                         coll=CollConfig(policy="model"))
    assert base == defaulted
    assert tuned != base
    assert tuned["coll"]["policy"] == "model"


# -- stats counters ---------------------------------------------------------

def test_collective_stats_counters_and_serialisation():
    result = Cluster(4, seed=1).run(
        CollectiveBench("allreduce", size=256, iterations=3))
    stats = result.stats
    key = "allreduce/binomial"
    assert key in stats.collective_calls
    # Rank 0 opens/closes the timed region, so it logs all 3
    # iterations; other ranks may dispatch an iteration just outside
    # the region (the same boundary skew every counter has).
    calls = stats.collective_calls[key]
    assert calls[0] == 3
    assert calls.min() >= 2
    assert (stats.collective_bytes[key] > 0).all()
    assert stats.total_collectives >= 8
    rows = stats.per_node_rows()
    assert all(row["collectives"] >= 2 for row in rows)

    restored = type(stats).from_dict(stats.to_dict())
    assert sorted(restored.collective_calls) == \
        sorted(stats.collective_calls)
    for key in stats.collective_calls:
        np.testing.assert_array_equal(restored.collective_calls[key],
                                      stats.collective_calls[key])
        np.testing.assert_array_equal(restored.collective_bytes[key],
                                      stats.collective_bytes[key])


def test_stats_from_dict_tolerates_pre_coll_entries():
    from repro.instruments.stats import ClusterStats
    stats = ClusterStats(2)
    data = stats.to_dict()
    del data["collective_calls"]
    del data["collective_bytes"]
    restored = ClusterStats.from_dict(data)
    assert restored.collective_calls == {}
    assert restored.total_collectives == 0


# -- legacy bit-identity ----------------------------------------------------

def test_untuned_machine_is_bit_identical_to_legacy_radix():
    """The default fixed policy dispatches exactly the legacy
    schedules: the pinned Radix baseline must not move at all."""
    result = Cluster(8, seed=11).run(RadixSort(keys_per_proc=64))
    assert result.runtime_us == 4667.500000000056
    assert result.events_processed == 18232


def test_proc_collectives_flow_through_coll_counters():
    """Legacy-facing Proc.barrier/broadcast land in the new counters."""
    result = Cluster(4, seed=0).run(
        CollectiveBench("barrier", iterations=2))
    assert "barrier/dissemination" in result.stats.collective_calls
