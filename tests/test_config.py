"""Tests for JSON experiment configurations."""

import pytest

from repro import Cluster
from repro.apps import EM3D, RadixSort
from repro.harness.config import APP_REGISTRY, ExperimentConfig


def test_registry_covers_the_suite():
    assert set(APP_REGISTRY) == {
        "Radix", "EM3D", "Sample", "Barnes", "P-Ray", "Murphi",
        "Connect", "NOW-sort", "Radb"}


def test_unknown_app_rejected():
    with pytest.raises(KeyError):
        ExperimentConfig(app_name="quake")


def test_json_roundtrip():
    config = ExperimentConfig(
        app_name="Radix", app_kwargs={"keys_per_proc": 64},
        n_nodes=4, seed=9, knobs={"delta_o": 10.0})
    clone = ExperimentConfig.from_json(config.to_json())
    assert clone == config


def test_from_json_rejects_unknown_keys():
    with pytest.raises(ValueError):
        ExperimentConfig.from_json(
            '{"app_name": "Radix", "flux_capacitor": 1}')


def test_build_and_run():
    config = ExperimentConfig(
        app_name="Radix", app_kwargs={"keys_per_proc": 48},
        n_nodes=3, seed=5)
    result = config.run()
    assert result.app_name == "Radix"
    assert result.n_nodes == 3


def test_config_reproduces_a_direct_run_exactly():
    direct = Cluster(n_nodes=4, seed=7).run(
        RadixSort(keys_per_proc=64))
    config = ExperimentConfig(
        app_name="Radix", app_kwargs={"keys_per_proc": 64},
        n_nodes=4, seed=7)
    replayed = config.run()
    assert replayed.runtime_us == direct.runtime_us
    assert (replayed.stats.matrix == direct.stats.matrix).all()


def test_from_run_captures_everything():
    from repro.am.tuning import TuningKnobs
    cluster = Cluster(n_nodes=4, seed=3,
                      knobs=TuningKnobs.added_latency(25.0))
    app = EM3D(nodes_per_proc=10, steps=2, variant="read")
    config = ExperimentConfig.from_run(app, cluster)
    assert config.app_name == "EM3D"
    assert config.app_kwargs["variant"] == "read"
    assert config.knobs["delta_L"] == 25.0
    # And the captured config replays to the same result.
    direct = cluster.run(app)
    replayed = config.run()
    assert replayed.runtime_us == direct.runtime_us


def test_knob_and_param_overrides_apply():
    config = ExperimentConfig(
        app_name="Radb", app_kwargs={"keys_per_proc": 32},
        n_nodes=2, params={"latency": 20.0},
        knobs={"delta_o": 5.0}, cost={"cpu_scale": 2.0})
    cluster = config.build_cluster()
    assert cluster.params.latency == 20.0
    assert cluster.knobs.delta_o == 5.0
    assert cluster.cost.cpu_scale == 2.0
