"""Unit tests for the discrete-event kernel (engine, events, processes)."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, Simulator
from repro.sim.events import EventError


def test_empty_run_leaves_clock_at_zero():
    sim = Simulator()
    sim.run()
    assert sim.now == 0.0


def test_run_until_advances_clock_without_events():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_timeout_advances_clock():
    sim = Simulator()

    def body():
        yield sim.timeout(5.0)
        yield sim.timeout(2.5)

    sim.process(body())
    sim.run()
    assert sim.now == 7.5


def test_timeout_carries_value():
    sim = Simulator()
    seen = []

    def body():
        value = yield sim.timeout(1.0, value="hello")
        seen.append(value)

    sim.process(body())
    sim.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_process_return_value_via_stop_event():
    sim = Simulator()

    def body():
        yield sim.timeout(3.0)
        return 99

    proc = sim.process(body())
    assert sim.run(stop_event=proc) == 99


def test_events_process_in_time_order():
    sim = Simulator()
    order = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(waiter(3.0, "c"))
    sim.process(waiter(1.0, "a"))
    sim.process(waiter(2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_fifo_order_at_equal_times():
    sim = Simulator()
    order = []

    def waiter(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(10):
        sim.process(waiter(tag))
    sim.run()
    assert order == list(range(10))


def test_process_waits_on_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(4.0)
        return "done"

    def parent():
        result = yield sim.process(child())
        assert result == "done"
        return sim.now

    proc = sim.process(parent())
    assert sim.run(stop_event=proc) == 4.0


def test_manual_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event("gate")

    def opener():
        yield sim.timeout(10.0)
        gate.succeed("opened")

    def waiter():
        value = yield gate
        return (sim.now, value)

    sim.process(opener())
    proc = sim.process(waiter())
    assert sim.run(stop_event=proc) == (10.0, "opened")


def test_event_double_trigger_is_error():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(EventError):
        event.succeed(2)


def test_event_value_before_trigger_is_error():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(EventError):
        _ = event.value


def test_failed_event_raises_inside_process():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    gate.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("oops")

    sim.process(bad())
    with pytest.raises(ValueError, match="oops"):
        sim.run()


def test_yielding_non_event_raises_typeerror_in_process():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(TypeError):
        sim.run()


def test_non_generator_process_rejected():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_interrupt_preempts_wait():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("overslept")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    def interrupter(victim):
        yield sim.timeout(5.0)
        victim.interrupt("wake up")

    victim = sim.process(sleeper())
    sim.process(interrupter(victim))
    sim.run()
    assert log == [("interrupted", 5.0, "wake up")]


def test_interrupted_process_can_wait_again():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(7.0)
        log.append(sim.now)

    def interrupter(victim):
        yield sim.timeout(5.0)
        victim.interrupt()

    victim = sim.process(sleeper())
    sim.process(interrupter(victim))
    sim.run()
    # Abandoned 100 us timeout must not wake the process later.
    assert log == [12.0]


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_run_until_stops_midway():
    sim = Simulator()
    log = []

    def body():
        yield sim.timeout(10.0)
        log.append("ran")

    sim.process(body())
    sim.run(until=5.0)
    assert sim.now == 5.0 and log == []
    sim.run()
    assert log == ["ran"] and sim.now == 10.0


def test_stop_event_timeout_error_when_never_fires():
    sim = Simulator()
    never = sim.event()

    def body():
        yield sim.timeout(1.0)

    sim.process(body())
    with pytest.raises(TimeoutError):
        sim.run(stop_event=never)


def test_anyof_succeeds_on_first():
    sim = Simulator()

    def body():
        first = sim.timeout(3.0, value="slow")
        second = sim.timeout(1.0, value="fast")
        result = yield sim.any_of([first, second])
        return (sim.now, list(result.values()))

    proc = sim.process(body())
    assert sim.run(stop_event=proc) == (1.0, ["fast"])


def test_allof_waits_for_all():
    sim = Simulator()

    def body():
        events = [sim.timeout(t, value=t) for t in (3.0, 1.0, 2.0)]
        result = yield sim.all_of(events)
        return (sim.now, sorted(result.values()))

    proc = sim.process(body())
    assert sim.run(stop_event=proc) == (3.0, [1.0, 2.0, 3.0])


def test_allof_empty_list_succeeds_immediately():
    sim = Simulator()

    def body():
        yield sim.all_of([])
        return sim.now

    proc = sim.process(body())
    assert sim.run(stop_event=proc) == 0.0


def test_events_processed_counter_increases():
    sim = Simulator()

    def body():
        for _ in range(5):
            yield sim.timeout(1.0)

    sim.process(body())
    sim.run()
    assert sim.events_processed >= 5
