"""Calibration microbenchmarks must recover the dialed parameters
(Section 3.3 / Table 2)."""

import pytest

from repro.am.tuning import TuningKnobs
from repro.calibrate import (calibrate_bulk_bandwidth, logp_signature,
                             measure_parameters, round_trip_time)
from repro.calibrate.calibration import calibrate_machine
from repro.network.loggp import LogGPParams

NOW = LogGPParams.berkeley_now()


def test_baseline_measurement_matches_machine():
    measured = measure_parameters()
    assert measured.send_overhead == pytest.approx(NOW.send_overhead,
                                                   abs=0.1)
    assert measured.recv_overhead == pytest.approx(NOW.recv_overhead,
                                                   abs=0.2)
    assert measured.overhead == pytest.approx(NOW.overhead, abs=0.2)
    # Finite bursts read g slightly low, as the paper observed.
    assert measured.gap == pytest.approx(NOW.gap, rel=0.12)
    assert measured.latency == pytest.approx(NOW.latency, abs=0.3)


def test_round_trip_is_2L_plus_4o():
    assert round_trip_time() == pytest.approx(NOW.round_trip_time(),
                                              abs=0.2)


def test_signature_short_burst_shows_send_overhead():
    signature = logp_signature(burst_sizes=(1, 4, 16, 64),
                               deltas=(0.0,))
    assert signature.send_overhead() == pytest.approx(
        NOW.send_overhead, abs=0.1)


def test_signature_large_delta_shows_both_overheads():
    signature = logp_signature(burst_sizes=(64,), deltas=(400.0,))
    interval = signature.steady_state(400.0)
    assert interval - 400.0 == pytest.approx(
        NOW.send_overhead + NOW.recv_overhead, abs=0.3)


def test_dialed_overhead_recovered_within_tolerance():
    rows = calibrate_machine("o", (2.9, 12.9, 52.9, 102.9))
    for row in rows:
        assert row.measured.overhead == pytest.approx(row.desired,
                                                      rel=0.02)
        # L stays put (Table 2, left block).
        assert row.measured.latency == pytest.approx(NOW.latency,
                                                     abs=2.0)


def test_dialed_overhead_raises_effective_gap():
    # Table 2: at o=103 the observed g is ~206 (the processor is the
    # bottleneck at o_send + o_recv).
    rows = calibrate_machine("o", (102.9,))
    assert rows[0].measured.gap == pytest.approx(2 * 102.9, rel=0.05)


def test_dialed_gap_recovered_and_independent():
    rows = calibrate_machine("g", (5.8, 15.0, 55.0, 105.0))
    for row in rows:
        # Finite-burst measurement under-reads slightly (paper: 99 for
        # a desired 105).
        assert row.desired * 0.8 <= row.measured.gap <= row.desired * 1.05
        assert row.measured.overhead == pytest.approx(NOW.overhead,
                                                      abs=0.2)
        assert row.measured.latency == pytest.approx(NOW.latency,
                                                     abs=0.5)


def test_dialed_latency_recovered_and_o_independent():
    rows = calibrate_machine("L", (5.0, 15.0, 55.0, 105.0))
    for row in rows:
        assert row.measured.latency == pytest.approx(row.desired,
                                                     abs=0.5)
        assert row.measured.overhead == pytest.approx(NOW.overhead,
                                                      abs=0.2)


def test_large_latency_raises_effective_gap_via_window():
    # The paper's "notable effect": fixed capacity means g rises with L
    # (observed 27.7 at L=105 with desired g=5.8).
    rows = calibrate_machine("L", (105.0,), window=8)
    effective_gap = rows[0].measured.gap
    expected = 2 * 105.5 / 8  # ~ RTT / window
    assert effective_gap == pytest.approx(expected, rel=0.15)
    assert effective_gap > 3 * NOW.gap


def test_bulk_calibration_saturates_at_machine_bandwidth():
    calibration = calibrate_bulk_bandwidth()
    assert calibration.saturated_mb_s == pytest.approx(
        NOW.bulk_bandwidth_mb_s, rel=0.05)
    # Bandwidth grows with message size up to saturation (the paper
    # grows the size until no further increase).
    assert calibration.bandwidths_mb_s[0] \
        < calibration.bandwidths_mb_s[-1]


def test_bulk_calibration_with_reduced_bandwidth_dial():
    knobs = TuningKnobs.bulk_bandwidth(5.0, NOW)
    calibration = calibrate_bulk_bandwidth(knobs=knobs)
    assert calibration.saturated_mb_s == pytest.approx(5.0, rel=0.1)


def test_signature_render_is_textual():
    signature = logp_signature(burst_sizes=(1, 8), deltas=(0.0,))
    text = signature.render()
    assert "LogP signature" in text and "delta" in text
