"""Tests for the per-message tracer."""

import pytest

from repro import Cluster, LogGPParams, TuningKnobs
from repro.apps.base import Application
from repro.instruments.trace import MessageTracer, MessageTimeline

NOW = LogGPParams.berkeley_now()


class _PingApp(Application):
    name = "ping"

    def run_rank(self, proc):
        if proc.rank == 0:
            value = yield from proc.am.rpc(1, "_gas_barrier",
                                           ("unused-token", 0))
            del value


class _WriterApp(Application):
    name = "writer"

    def __init__(self, n=10):
        self.n = n

    def run_rank(self, proc):
        arr = proc.allocate(2 * proc.n_ranks, name="t")
        yield from proc.barrier()
        peer = (proc.rank + 1) % proc.n_ranks
        for i in range(self.n):
            yield from proc.write(arr, 2 * peer, i)
        yield from proc.sync()


def test_tracer_records_full_timelines():
    tracer = MessageTracer()
    cluster = Cluster(n_nodes=2, seed=1)
    cluster.run(_WriterApp(), tracer=tracer)
    complete = tracer.timelines(complete_only=True)
    assert complete, "no complete message timelines recorded"
    for timeline in complete:
        assert timeline.times["sent"] <= timeline.times["injected"]
        assert timeline.times["injected"] < timeline.times["delivered"]
        assert timeline.times["delivered"] <= timeline.times["handled"]


def test_wire_latency_matches_machine_L():
    tracer = MessageTracer()
    cluster = Cluster(n_nodes=2, seed=1)
    cluster.run(_WriterApp(n=4), tracer=tracer)
    short_messages = [t for t in tracer.timelines(True)
                      if t.kind == "request"]
    for timeline in short_messages:
        # Wire stage = exactly the machine latency for short packets.
        assert timeline.wire_latency == pytest.approx(NOW.latency)


def test_delay_queue_shows_up_in_wire_stage():
    tracer = MessageTracer()
    cluster = Cluster(n_nodes=2, seed=1,
                      knobs=TuningKnobs.added_latency(40.0))
    cluster.run(_WriterApp(n=4), tracer=tracer)
    requests = [t for t in tracer.timelines(True)
                if t.kind == "request"]
    for timeline in requests:
        assert timeline.wire_latency == pytest.approx(NOW.latency + 40.0)


def test_latency_stats_summary():
    tracer = MessageTracer()
    Cluster(n_nodes=4, seed=2).run(_WriterApp(), tracer=tracer)
    stats = tracer.latency_stats()
    assert stats["count"] > 0
    assert stats["p50_us"] <= stats["p95_us"] <= stats["max_us"]
    assert stats["mean_us"] >= NOW.one_way_time()


def test_component_breakdown_sums_to_total():
    tracer = MessageTracer()
    Cluster(n_nodes=2, seed=3).run(_WriterApp(n=6), tracer=tracer)
    breakdown = tracer.component_breakdown()
    stats = tracer.latency_stats()
    total = sum(breakdown.values())
    assert total == pytest.approx(stats["mean_us"], rel=1e-9)


def test_render_produces_table():
    tracer = MessageTracer()
    Cluster(n_nodes=2, seed=1).run(_WriterApp(n=3), tracer=tracer)
    text = tracer.render(limit=5)
    assert "xfer" in text and "wire" in text
    assert len(text.splitlines()) >= 2


def test_untraced_run_unaffected():
    cluster = Cluster(n_nodes=2, seed=1)
    with_trace = MessageTracer()
    a = cluster.run(_WriterApp(), tracer=with_trace)
    b = cluster.run(_WriterApp())
    assert a.runtime_us == b.runtime_us  # tracing adds no simulated time


def test_timeline_partial_stages():
    timeline = MessageTimeline(xfer_id=1)
    assert not timeline.complete
    assert timeline.total_latency is None
    timeline.times["sent"] = 1.0
    timeline.times["handled"] = 11.0
    assert timeline.total_latency == 10.0


def test_unknown_stage_rejected():
    tracer = MessageTracer()
    with pytest.raises(ValueError):
        tracer.record("teleported", 1, 0.0)
