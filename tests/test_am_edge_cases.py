"""Edge cases of the Active Message layer and handler protocol."""

import pytest

from repro.am.layer import AmError, DEFAULT_WINDOW, HandlerTable
from repro.network.packet import BULK_FRAGMENT_BYTES
from tests.helpers import Fabric


def test_handler_table_duplicate_rejected():
    table = HandlerTable()
    table.register("h", lambda am, pkt: None)
    with pytest.raises(AmError):
        table.register("h", lambda am, pkt: None)
    assert "h" in table
    with pytest.raises(AmError):
        table.lookup("missing")


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        Fabric(window=0)


def test_double_reply_rejected():
    fabric = Fabric()
    am0, am1 = fabric.ams

    def greedy(am, packet):
        yield from am.reply(1)
        yield from am.reply(2)

    fabric.table.register("greedy", greedy)

    def sender():
        yield from am0.send_oneway(1, "greedy", payload=0)

    def server():
        yield from am1.wait_until(lambda: False)

    with pytest.raises(AmError):
        fabric.run(sender(), server())


def test_reply_to_oneway_rejected():
    fabric = Fabric()
    am0, am1 = fabric.ams
    done = {}

    def chatty(am, packet):
        yield from am.reply("you did not ask")

    fabric.table.register("chatty", chatty)

    def sender():
        yield from am0.send_oneway(1, "chatty", payload=0)
        done["sent"] = True

    def server():
        yield from am1.wait_until(lambda: False)

    with pytest.raises(AmError):
        fabric.run(sender(), server())


def test_bulk_zero_bytes_rejected():
    fabric = Fabric()
    am0 = fabric.ams[0]

    def body():
        yield from am0.bulk_store(1, "x", None, 0)

    with pytest.raises(ValueError):
        fabric.run(body())


def test_fragment_count_boundaries():
    from repro.am.layer import AmLayer
    assert AmLayer.fragment_count(1) == 1
    assert AmLayer.fragment_count(BULK_FRAGMENT_BYTES) == 1
    assert AmLayer.fragment_count(BULK_FRAGMENT_BYTES + 1) == 2
    assert AmLayer.fragment_count(10 * BULK_FRAGMENT_BYTES) == 10


def test_bulk_fragments_share_xfer_id_and_reassemble():
    fabric = Fabric()
    am0, am1 = fabric.ams
    seen = {}

    def sink(am, packet):
        seen["payload"] = packet.payload
        seen["fragments"] = packet.fragment
        seen["bytes"] = packet.logical_bytes
        return None

    fabric.table.register("frag_sink", sink)
    nbytes = 3 * BULK_FRAGMENT_BYTES + 100

    def sender():
        yield from am0.bulk_oneway(1, "frag_sink", "BIG", nbytes)

    def server():
        yield from am1.wait_until(lambda: "payload" in seen)

    fabric.run(sender(), server())
    assert seen["payload"] == "BIG"
    assert seen["fragments"] == (3, 4)  # delivered on the last of 4
    assert seen["bytes"] == nbytes


def test_reply_bulk_returns_payload_and_size():
    fabric = Fabric()
    am0, am1 = fabric.ams

    def server_handler(am, packet):
        yield from am.reply_bulk({"data": list(range(5))}, 9000)

    fabric.table.register("get5", server_handler)

    def requester():
        payload, nbytes = yield from am0.bulk_rpc(1, "get5")
        return payload, nbytes

    def server():
        yield from am1.wait_until(lambda: False)

    sim = fabric.sim
    req = sim.process(requester())
    sim.process(server())
    payload, nbytes = sim.run(stop_event=req)
    assert payload == {"data": [0, 1, 2, 3, 4]}
    assert nbytes == 9000


def test_credits_restored_after_bulk_rpc():
    fabric = Fabric(window=3)
    am0, am1 = fabric.ams

    def server_handler(am, packet):
        yield from am.reply_bulk("ok", 5000)

    fabric.table.register("getx", server_handler)

    def requester():
        for _ in range(5):  # more rpcs than the window
            yield from am0.bulk_rpc(1, "getx")
        yield from am0.drain()
        return am0.credits_for(1)

    def server():
        yield from am1.wait_until(lambda: False)

    sim = fabric.sim
    req = sim.process(requester())
    sim.process(server())
    assert sim.run(stop_event=req) == 3


def test_rx_pending_and_poll_drain():
    fabric = Fabric()
    am0, am1 = fabric.ams
    handled = []
    fabric.table.register(
        "psink2", lambda am, pkt: handled.append(pkt.payload))

    def sender():
        for i in range(3):
            yield from am0.send_oneway(1, "psink2", payload=i)

    def idle_then_poll():
        yield fabric.sim.timeout(200.0)
        assert am1.rx_pending == 3  # delivered but unpolled
        yield from am1.poll()
        assert am1.rx_pending == 0

    fabric.run(sender(), idle_then_poll())
    assert handled == [0, 1, 2]


def test_stray_credit_is_an_error():
    fabric = Fabric()
    am0 = fabric.ams[0]
    with pytest.raises(AmError):
        am0._credit_returned(999_999)


def test_wait_until_immediately_true_costs_nothing():
    fabric = Fabric()
    am0 = fabric.ams[0]

    def body():
        yield from am0.wait_until(lambda: True)
        return fabric.sim.now

    assert fabric.run(body())[0] == 0.0
