"""Unit tests for disks, the cost model, and the Cluster runner."""

import pytest

from repro import Cluster, CostModel
from repro.apps.base import Application
from repro.cluster.disk import Disk
from repro.sim import Simulator


# -- disk ---------------------------------------------------------------------

def test_disk_streaming_time():
    sim = Simulator()
    disk = Disk(sim, bandwidth_mb_s=5.5, seek_us=0.0)

    def body():
        yield from disk.read(5_500_000)  # 5.5 MB at 5.5 MB/s = 1 s
        return sim.now

    proc = sim.process(body())
    assert sim.run(stop_event=proc) == pytest.approx(1e6)
    assert disk.bytes_transferred == 5_500_000


def test_disk_seek_charged_once():
    sim = Simulator()
    disk = Disk(sim, bandwidth_mb_s=5.5, seek_us=10_000.0)

    def body():
        yield from disk.read(0, seek=True)
        return sim.now

    proc = sim.process(body())
    assert sim.run(stop_event=proc) == pytest.approx(10_000.0)


def test_disk_arm_serialises_requests():
    sim = Simulator()
    disk = Disk(sim, bandwidth_mb_s=1.0, seek_us=0.0)
    finished = []

    def user(tag, nbytes):
        yield from disk.write(nbytes)
        finished.append((tag, sim.now))

    sim.process(user("a", 100))
    sim.process(user("b", 100))
    sim.run()
    assert finished == [("a", 100.0), ("b", 200.0)]


def test_disk_validates_parameters():
    sim = Simulator()
    with pytest.raises(ValueError):
        Disk(sim, bandwidth_mb_s=0.0)
    with pytest.raises(ValueError):
        Disk(sim, seek_us=-1.0)
    disk = Disk(sim)
    with pytest.raises(ValueError):
        next(disk.read(-5))


# -- cost model -----------------------------------------------------------------

def test_cost_model_helpers_scale_linearly():
    cost = CostModel()
    assert cost.keys(100) == pytest.approx(100 * cost.us_per_key)
    assert cost.edges(10) == pytest.approx(10 * cost.us_per_edge)
    assert cost.ops(50) == pytest.approx(50 * cost.us_per_op)
    assert cost.copy_bytes(1000) == pytest.approx(
        1000 * cost.us_per_byte_copied)


def test_cost_model_scaled_cpu():
    slow = CostModel().scaled(2.0)
    assert slow.keys(10) == pytest.approx(2 * CostModel().keys(10))


def test_cost_model_rejects_negative():
    with pytest.raises(ValueError):
        CostModel(us_per_key=-1.0)


# -- cluster runner ----------------------------------------------------------------

class _Sleeper(Application):
    name = "sleeper"

    def __init__(self, us):
        self.us = us

    def run_rank(self, proc):
        yield from proc.compute(self.us)


def test_cluster_validates_node_count():
    with pytest.raises(ValueError):
        Cluster(n_nodes=0)


def test_cluster_run_limit_raises_timeout():
    cluster = Cluster(n_nodes=2, run_limit_us=100.0)
    with pytest.raises(TimeoutError):
        cluster.run(_Sleeper(1e9))


def test_cluster_with_knobs_preserves_configuration():
    from repro.am.tuning import TuningKnobs
    cluster = Cluster(n_nodes=4, seed=9, window=5, disks_per_node=1)
    dialed = cluster.with_knobs(TuningKnobs.added_gap(3.0))
    assert dialed.n_nodes == 4
    assert dialed.seed == 9
    assert dialed.window == 5
    assert dialed.disks_per_node == 1
    assert dialed.knobs.delta_g == 3.0
    assert cluster.knobs.is_baseline  # original untouched


def test_run_result_metadata():
    cluster = Cluster(n_nodes=3, seed=1)
    result = cluster.run(_Sleeper(250.0))
    assert result.app_name == "sleeper"
    assert result.n_nodes == 3
    assert result.runtime_us >= 250.0
    assert result.events_processed > 0
    assert result.runtime_s == pytest.approx(result.runtime_us / 1e6)


def test_run_result_slowdown_vs():
    cluster = Cluster(n_nodes=2)
    fast = cluster.run(_Sleeper(100.0))
    slow = cluster.run(_Sleeper(400.0))
    assert slow.slowdown_vs(fast) > 1.5


def test_cluster_describe():
    text = Cluster(n_nodes=8).describe()
    assert "P=8" in text and "baseline" in text


def test_consecutive_runs_are_independent():
    cluster = Cluster(n_nodes=2, seed=5)
    first = cluster.run(_Sleeper(100.0))
    second = cluster.run(_Sleeper(100.0))
    assert first.runtime_us == second.runtime_us
    assert first.stats is not second.stats
