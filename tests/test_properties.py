"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.am.tuning import TuningKnobs
from repro.gas.memory import GlobalArray
from repro.network.loggp import LogGPParams
from repro.sim import Simulator

SIM_SETTINGS = settings(max_examples=20, deadline=None,
                        suppress_health_check=[HealthCheck.too_slow])


# -- engine ---------------------------------------------------------------------

@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False), min_size=1,
                       max_size=50))
@settings(max_examples=50, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []

    def waiter(delay):
        yield sim.timeout(delay)
        fired.append(sim.now)

    for delay in delays:
        sim.process(waiter(delay))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(n=st.integers(min_value=1, max_value=40))
@settings(max_examples=30, deadline=None)
def test_equal_time_events_fifo(n):
    sim = Simulator()
    order = []

    def waiter(tag):
        yield sim.timeout(7.0)
        order.append(tag)

    for tag in range(n):
        sim.process(waiter(tag))
    sim.run()
    assert order == list(range(n))


# -- LogGP parameters -------------------------------------------------------------

@given(latency=st.floats(min_value=0.0, max_value=1000.0),
       o_send=st.floats(min_value=0.0, max_value=1000.0),
       o_recv=st.floats(min_value=0.0, max_value=1000.0),
       gap=st.floats(min_value=0.01, max_value=1000.0))
@settings(max_examples=100, deadline=None)
def test_loggp_identities(latency, o_send, o_recv, gap):
    params = LogGPParams(latency=latency, send_overhead=o_send,
                         recv_overhead=o_recv, gap=gap)
    assert params.capacity >= 1
    assert params.round_trip_time() == pytest.approx(
        2 * latency + 4 * params.overhead)
    assert params.one_way_time() == pytest.approx(
        latency + 2 * params.overhead)
    assert params.overhead == pytest.approx((o_send + o_recv) / 2)


@given(mb=st.floats(min_value=0.1, max_value=37.9))
@settings(max_examples=50, deadline=None)
def test_bulk_bandwidth_knob_hits_target(mb):
    base = LogGPParams.berkeley_now()
    knobs = TuningKnobs.bulk_bandwidth(mb, base)
    effective = knobs.effective(base)
    assert effective.bulk_bandwidth_mb_s == pytest.approx(mb, rel=1e-9)


@given(mb=st.floats(min_value=38.1, max_value=1e4))
@settings(max_examples=20, deadline=None)
def test_bulk_bandwidth_knob_cannot_speed_up(mb):
    base = LogGPParams.berkeley_now()
    knobs = TuningKnobs.bulk_bandwidth(mb, base)
    assert knobs.delta_G == 0.0  # apparatus only slows the machine


# -- global arrays ------------------------------------------------------------------

@given(length=st.integers(min_value=0, max_value=500),
       n_ranks=st.integers(min_value=1, max_value=33),
       layout=st.sampled_from(["block", "cyclic"]))
@settings(max_examples=100, deadline=None)
def test_array_ownership_partitions_indices(length, n_ranks, layout):
    array = GlobalArray(0, length, n_ranks, layout=layout)
    # Local lengths sum to the total.
    assert sum(array.local_length(r) for r in range(n_ranks)) == length
    # Every index maps to a valid (owner, local) pair, and local indices
    # enumerate 0..local_length-1 exactly once per rank.
    seen = {r: set() for r in range(n_ranks)}
    for index in range(length):
        owner, local_index = array.owner_of(index)
        assert 0 <= owner < n_ranks
        assert 0 <= local_index < array.local_length(owner)
        assert local_index not in seen[owner]
        seen[owner].add(local_index)
    for rank in range(n_ranks):
        assert seen[rank] == set(range(array.local_length(rank)))


@given(length=st.integers(min_value=1, max_value=300),
       n_ranks=st.integers(min_value=1, max_value=17))
@settings(max_examples=50, deadline=None)
def test_block_layout_is_contiguous(length, n_ranks):
    array = GlobalArray(0, length, n_ranks, layout="block")
    for rank in range(n_ranks):
        start = array.local_start(rank)
        for offset in range(array.local_length(rank)):
            assert array.owner_of(start + offset) == (rank, offset)


@given(length=st.integers(min_value=10, max_value=200),
       n_ranks=st.integers(min_value=2, max_value=8))
@settings(max_examples=30, deadline=None)
def test_owner_of_range_rejects_cross_rank_runs(length, n_ranks):
    array = GlobalArray(0, length, n_ranks, layout="block")
    boundary = array.local_length(0)
    if boundary < length:
        with pytest.raises(ValueError):
            array.owner_of_range(boundary - 1, 2)


# -- end-to-end sims with random inputs ---------------------------------------------

@given(keys_per_proc=st.integers(min_value=4, max_value=48),
       n_nodes=st.integers(min_value=1, max_value=6),
       seed=st.integers(min_value=0, max_value=1000))
@SIM_SETTINGS
def test_radix_sorts_any_input(keys_per_proc, n_nodes, seed):
    from repro import Cluster
    from repro.apps import RadixSort
    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    result = cluster.run(RadixSort(keys_per_proc=keys_per_proc))
    assert np.all(np.diff(result.output) >= 0)


@given(n_nodes=st.integers(min_value=1, max_value=5),
       seed=st.integers(min_value=0, max_value=1000),
       state_space=st.integers(min_value=20, max_value=300))
@SIM_SETTINGS
def test_murphi_matches_sequential_bfs(n_nodes, seed, state_space):
    from repro import Cluster
    from repro.apps import Murphi
    from repro.apps.murphi import TransitionSystem
    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    result = cluster.run(Murphi(state_space=state_space, branching=3))
    reference = TransitionSystem(state_space, 3, seed=seed)
    assert result.output["explored"] == reference.reachable_count()


@given(seed=st.integers(min_value=0, max_value=10_000),
       delta_o=st.floats(min_value=0.0, max_value=50.0),
       delta_L=st.floats(min_value=0.0, max_value=50.0))
@SIM_SETTINGS
def test_oneway_delivery_time_is_L_plus_2o(seed, delta_o, delta_L):
    from tests.helpers import Fabric
    knobs = TuningKnobs(delta_o=delta_o, delta_L=delta_L)
    fabric = Fabric(knobs=knobs)
    arrivals = []

    def sink(am, packet):
        arrivals.append(am.sim.now)
        return None

    fabric.table.register("psink", sink)
    am0, am1 = fabric.ams

    def sender():
        yield from am0.send_oneway(1, "psink", payload=0)

    def receiver():
        yield from am1.wait_until(lambda: bool(arrivals))

    fabric.run(sender(), receiver())
    base = LogGPParams.berkeley_now()
    expected = (base.send_overhead + delta_o + base.latency + delta_L
                + base.recv_overhead + delta_o)
    assert arrivals[0] == pytest.approx(expected, rel=1e-9)


# -- Barnes split planning -----------------------------------------------------------

@given(ax=st.floats(min_value=0.01, max_value=0.99),
       ay=st.floats(min_value=0.01, max_value=0.99),
       az=st.floats(min_value=0.01, max_value=0.99),
       bx=st.floats(min_value=0.01, max_value=0.99),
       by=st.floats(min_value=0.01, max_value=0.99),
       bz=st.floats(min_value=0.01, max_value=0.99))
@settings(max_examples=100, deadline=None)
def test_plan_split_structure(ax, ay, az, bx, by, bz):
    from repro.apps.barnes import plan_split
    body_a = (0, np.array([ax, ay, az]), 1.0)
    body_b = (1, np.array([bx, by, bz]), 1.0)
    records = plan_split((), body_a, body_b)
    # Both bodies appear in exactly one leaf each (or share one at max
    # depth); the root's flip to internal comes last.
    leaves = [rec for _k, rec in records if rec["type"] == "leaf"]
    bodies = [b[0] for leaf in leaves for b in leaf["bodies"]]
    assert sorted(bodies) == [0, 1]
    assert records[-1][0] == ()
    assert records[-1][1]["type"] == "internal"
    # Every internal record carries a non-empty child map.
    for _key, record in records:
        if record["type"] == "internal":
            assert record["children"]
