"""simsan: the happens-before race & deadlock sanitizer.

The contract under test: the planted fixture apps produce exactly the
defects they plant (a dual-site data race; a two-rank lock cycle; a
stuck barrier frontier); clean suite apps stay silent; ``sanitize=off``
is bit-identical to a plain run; the harness taxonomy splits failures
into deadlock / livelock / budget exceeded / fault; and sanitized
sweeps bypass the run cache in both directions.
"""

from pathlib import Path

import pytest

from repro.am.tuning import TuningKnobs
from repro.apps import RadixSort, default_suite
from repro.cluster.machine import Cluster
from repro.gas.runtime import LivelockError
from repro.harness import RunCache
from repro.harness.parallel import PointTask, execute_point, \
    run_sweep_points
from repro.harness.sweeps import FAILURE_CATEGORIES, SweepPoint
from repro.network.faults import FaultPlan
from repro.network.loggp import LogGPParams
from repro.sanitize import DeadlockError, Sanitizer
from repro.sanitize.clocks import ClockSet
from repro.sanitize.cli import load_app, main

FIXTURES = Path(__file__).parent / "fixtures" / "sanitize"


def fixture_app(stem, class_name):
    return load_app(f"{FIXTURES / stem}.py:{class_name}")


# ---------------------------------------------------------------------------
# Vector clocks: the happens-before substrate.
# ---------------------------------------------------------------------------

def test_clockset_send_increment_protocol():
    clocks = ClockSet(2)
    t_access = clocks.tick_of(0)  # rank 0 accesses before any send
    assert not clocks.ordered(1, 0, t_access)
    snapshot = clocks.tick(0)     # rank 0's first send post-access...
    clocks.join(1, snapshot)      # ...reaches rank 1
    assert clocks.ordered(1, 0, t_access)
    # An access rank 0 makes after that send stays unordered.
    assert not clocks.ordered(1, 0, clocks.tick_of(0))


# ---------------------------------------------------------------------------
# The planted race: put and read of the same element, unsynchronized.
# ---------------------------------------------------------------------------

def test_planted_race_is_detected_with_both_sites():
    result = Cluster(n_nodes=8, seed=11, sanitize=True).run(
        fixture_app("racy_put", "RacyPut"))
    races = result.sanitizer.races
    assert len(races) == 1  # deduped across elements and orderings
    race = races[0]
    assert race.occurrences == 8  # one per element of slots[]
    kinds = {race.prior.kind, race.access.kind}
    assert kinds == {"put", "read"}
    sites = {race.prior.site, race.access.site}
    assert sites == {"racy_put.py:26", "racy_put.py:27"}
    assert race.prior.rank != race.access.rank
    assert race.location.startswith("slots[")


def test_clean_suite_apps_are_silent():
    for app in default_suite(scale=0.1)[:2]:  # Radix + EM3D(write)
        result = Cluster(n_nodes=4, seed=11, sanitize=True).run(app)
        report = result.sanitizer
        assert report.clean, report.render()
        assert report.races == ()


# ---------------------------------------------------------------------------
# The planted deadlocks: lock cycle and stuck barrier frontier.
# ---------------------------------------------------------------------------

def test_planted_lock_cycle_is_reported_with_members():
    with pytest.raises(DeadlockError) as exc_info:
        Cluster(n_nodes=2, seed=11, livelock_limit=200,
                sanitize=True).run(fixture_app("lock_cycle", "LockCycle"))
    report = exc_info.value.report
    assert report.kind == "cycle"
    assert report.ranks == (0, 1)
    assert all(edge.kind == "lock" for edge in report.edges)
    assert "cycle" in str(exc_info.value)


def test_lock_cycle_without_sanitizer_stays_livelock():
    with pytest.raises(LivelockError):
        Cluster(n_nodes=2, seed=11, livelock_limit=200).run(
            fixture_app("lock_cycle", "LockCycle"))


def test_unbalanced_barrier_is_a_frontier_deadlock():
    with pytest.raises(DeadlockError) as exc_info:
        Cluster(n_nodes=4, seed=11, sanitize=True).run(
            fixture_app("unbalanced_barrier", "UnbalancedBarrier"))
    report = exc_info.value.report
    assert report.kind == "frontier"
    assert 0 not in report.ranks  # rank 0 finished; the others wedge
    assert all(edge.kind == "barrier" for edge in report.edges)


def test_unbalanced_barrier_deadlocks_even_without_sanitizer():
    # Heap exhaustion is detected structurally (StalledError), so the
    # upgrade from TimeoutError to DeadlockError needs no sanitizer —
    # only the edge annotations do.
    with pytest.raises(DeadlockError) as exc_info:
        Cluster(n_nodes=4, seed=11).run(
            fixture_app("unbalanced_barrier", "UnbalancedBarrier"))
    assert exc_info.value.report.kind == "frontier"


def test_deadlock_error_is_a_timeout_subclass():
    # Existing harness code catching TimeoutError keeps working.
    assert issubclass(DeadlockError, TimeoutError)


# ---------------------------------------------------------------------------
# Bit-identity: the sanitizer observes, never perturbs.
# ---------------------------------------------------------------------------

def test_sanitized_run_is_bit_identical_to_plain_run():
    app = RadixSort(keys_per_proc=32)
    plain = Cluster(n_nodes=4, seed=7).run(app)
    sanitized = Cluster(n_nodes=4, seed=7, sanitize=True).run(app)
    assert sanitized.runtime_us == plain.runtime_us
    assert sanitized.events_processed == plain.events_processed
    assert plain.sanitizer is None
    assert sanitized.sanitizer.accesses_checked > 0
    assert sanitized.sanitizer.messages_clocked > 0


# ---------------------------------------------------------------------------
# Harness taxonomy: one category per failure mode.
# ---------------------------------------------------------------------------

def _task(app, n_nodes, **overrides):
    spec = dict(app=app, n_nodes=n_nodes, value=0.0, knobs=TuningKnobs(),
                params=LogGPParams.berkeley_now(), seed=11)
    spec.update(overrides)
    return PointTask(**spec)


def test_taxonomy_deadlock_point():
    point = execute_point(_task(fixture_app("lock_cycle", "LockCycle"),
                                2, livelock_limit=200, sanitize=True))
    assert point.failure.startswith("deadlock: ")
    assert point.failure_category == "deadlock"


def test_taxonomy_livelock_point():
    point = execute_point(_task(fixture_app("lock_cycle", "LockCycle"),
                                2, livelock_limit=200))
    assert point.failure.startswith("livelock: ")
    assert point.failure_category == "livelock"


def test_taxonomy_budget_exceeded_point():
    point = execute_point(_task(RadixSort(keys_per_proc=32), 4,
                                run_limit_us=5.0))
    assert point.failure.startswith("budget exceeded: ")
    assert point.failure_category == "budget exceeded"


def test_taxonomy_fault_point():
    plan = FaultPlan(drop_rate=1.0, retx_timeout_us=10.0, max_retries=2)
    point = execute_point(_task(RadixSort(keys_per_proc=32), 2, seed=0,
                                faults=plan))
    assert point.failure.startswith("fault: ")
    assert point.failure_category == "fault"


def test_failure_category_edge_cases():
    knobs = TuningKnobs()
    assert SweepPoint(value=0.0, knobs=knobs).failure_category is None
    unknown = SweepPoint(value=0.0, knobs=knobs, failure="weird crash")
    assert unknown.failure_category == "error"
    assert "error" not in FAILURE_CATEGORIES


def test_as_rows_carries_failure_category():
    sweep = run_sweep_points(
        fixture_app("lock_cycle", "LockCycle"), 2, "L", [0.0],
        knob_for=lambda value: TuningKnobs(), seed=11,
        livelock_limit=200, sanitize=True)
    rows = sweep.as_rows()
    assert rows[0]["failure"] == "deadlock"
    assert rows[0]["runtime_us"] == "N/A"


# ---------------------------------------------------------------------------
# Cache discipline: sanitized sweeps never touch the cache.
# ---------------------------------------------------------------------------

def test_sanitized_sweep_bypasses_the_cache(tmp_path):
    cache = RunCache(tmp_path / "cache")
    app = RadixSort(keys_per_proc=32)
    run_sweep_points(app, 2, "L", [0.0],
                     knob_for=lambda value: TuningKnobs(), seed=3,
                     cache=cache, sanitize=True)
    assert len(cache) == 0  # no puts
    assert cache.hits == 0 and cache.misses == 0  # no gets either


def test_sanitize_is_not_part_of_the_cache_key():
    task = _task(RadixSort(keys_per_proc=32), 2)
    sanitized = _task(RadixSort(keys_per_proc=32), 2, sanitize=True)
    assert task.key_spec() == sanitized.key_spec()
    assert "sanitize" not in task.key_spec()


# ---------------------------------------------------------------------------
# The CLI.
# ---------------------------------------------------------------------------

def test_cli_reports_planted_race(capsys):
    code = main([f"{FIXTURES / 'racy_put'}.py:RacyPut", "--nodes", "8"])
    out = capsys.readouterr().out
    assert code == 1
    assert "race on slots[" in out
    assert "racy_put.py:26" in out and "racy_put.py:27" in out


def test_cli_clean_run_exits_zero(capsys):
    code = main(["Radix", "--scale", "0.1", "--nodes", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "simsan: 0 finding(s) across 1 app(s)" in out


def test_cli_rejects_unknown_app(capsys):
    assert main(["NoSuchApp"]) == 2
    assert "unknown app" in capsys.readouterr().err


def test_cli_json_format_includes_deadlock(capsys):
    import json
    code = main([f"{FIXTURES / 'lock_cycle'}.py:LockCycle",
                 "--nodes", "2", "--livelock-limit", "200",
                 "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    entry = payload["apps"][0]
    assert entry["deadlock"]["kind"] == "cycle"
    assert sorted(entry["deadlock"]["ranks"]) == [0, 1]


# ---------------------------------------------------------------------------
# Direct sanitizer unit coverage: exemptions of the check matrix.
# ---------------------------------------------------------------------------

class _FakeSim:
    def __init__(self):
        self.now = 0.0


class _FakeArray:
    def __init__(self):
        self.array_id = 1
        self.name = "a"

    def element_name(self, index):
        return f"a[{index}]"


def test_same_mode_accumulates_commute():
    san = Sanitizer(2, sim=_FakeSim())
    array = _FakeArray()
    san.on_access(0, array, 0, "add")
    san.on_access(1, array, 0, "add")
    assert san.races == []  # same-mode accum-accum is exempt


def test_mixed_mode_accumulates_race():
    san = Sanitizer(2, sim=_FakeSim())
    array = _FakeArray()
    san.on_access(0, array, 0, "add")
    san.on_access(1, array, 0, "min")
    assert len(san.races) == 1


def test_unordered_put_put_races_and_same_rank_does_not():
    san = Sanitizer(2, sim=_FakeSim())
    array = _FakeArray()
    san.on_access(0, array, 0, "put")
    san.on_access(0, array, 0, "put")  # same rank: fine
    assert san.races == []
    san.on_access(1, array, 0, "put")  # unordered peer
    assert len(san.races) == 1


def test_message_join_orders_accesses():
    san = Sanitizer(2, sim=_FakeSim())
    array = _FakeArray()
    san.on_access(0, array, 0, "put")
    snapshot = san.on_send(0)         # rank 0 sends after its write...
    san.on_deliver(1, snapshot)       # ...and rank 1 receives it.
    san.on_access(1, array, 0, "read")
    assert san.races == []  # happens-before established
